//! Configuration of a live serving run: topology, offered load, batching.

use ptp_ddb::CommitProtocol;
use ptp_livenet::{LiveCrash, LiveDegrade, LiveEnvFault, LivePartition};
use std::time::Duration;

/// How the driver picks keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeySkew {
    /// Every key of the pool is equally likely.
    Uniform,
    /// With probability `hot_fraction`, the op targets the single hottest
    /// key of its shard (key 0 of the pool); otherwise uniform.
    HotKey {
        /// Fraction of operations hitting the hot key, in `[0, 1]`.
        hot_fraction: f64,
    },
}

/// Group-commit and coalescing windows.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// `true` enables group-commit WAL flushing and protocol-message
    /// coalescing; `false` mirrors the simulator's flush points exactly
    /// (force-write per record, one channel send per message).
    pub enabled: bool,
    /// The batch window: at most one WAL flush and one coalesced send per
    /// destination per window.
    pub window: Duration,
}

impl BatchConfig {
    /// Batching off: per-record force writes, per-message sends.
    pub fn off() -> BatchConfig {
        BatchConfig { enabled: false, window: Duration::ZERO }
    }

    /// Batching on with the given window.
    pub fn on(window: Duration) -> BatchConfig {
        assert!(!window.is_zero(), "a batch window must have positive length");
        BatchConfig { enabled: true, window }
    }
}

/// Master-lease configuration for the wall-clock linearizable read fast
/// path: every `period`, each shard master sends a renewal to its group
/// replicas; an ack arms a grant lasting `duration` from the renewal's
/// *send* instant (the conservative anchor: the master never counts time
/// the replica did not promise). While every replica's grant is live and
/// the key is unlocked, the master serves reads from committed storage
/// without any lock or protocol round.
#[derive(Debug, Clone, Copy)]
pub struct LeaseConfig {
    /// Renewal cadence.
    pub period: Duration,
    /// Grant lifetime from each renewal's send instant.
    pub duration: Duration,
}

impl LeaseConfig {
    /// A lease renewed every `period`, valid for `duration` per renewal.
    ///
    /// # Panics
    ///
    /// Panics unless `ZERO < period < duration` — a lease that expires
    /// before its next renewal can never stay continuously valid.
    pub fn new(period: Duration, duration: Duration) -> LeaseConfig {
        assert!(!period.is_zero() && period < duration, "lease needs 0 < period < duration");
        LeaseConfig { period, duration }
    }
}

/// Everything a live serving run needs to know.
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Total sites in the cluster.
    pub sites: usize,
    /// Shards (replica groups) over those sites.
    pub shards: usize,
    /// Replicas per shard.
    pub replication: usize,
    /// The commit protocol every group (and the cross-shard top level) runs.
    pub protocol: CommitProtocol,
    /// The network's longest end-to-end delay `T` (each leg samples
    /// uniform `(T/10, T]`, as in `ptp-livenet`).
    pub t: Duration,
    /// Offered load: client operations per second, cluster-wide. The driver
    /// injects on this schedule regardless of completions (open loop).
    pub offered_rate: f64,
    /// How long the driver offers load.
    pub duration: Duration,
    /// Fraction of operations that are reads (served by the key's shard
    /// master from committed storage).
    pub read_fraction: f64,
    /// Fraction of *write* transactions that span two shards (committed
    /// through a top-level protocol instance over the masters).
    pub cross_shard_fraction: f64,
    /// Key selection policy.
    pub skew: KeySkew,
    /// Keys per shard in the workload vocabulary.
    pub keys_per_shard: usize,
    /// Group-commit / coalescing configuration.
    pub batch: BatchConfig,
    /// Simulated stable-storage latency: every WAL flush busy-holds the
    /// site for this long (the cost group commit amortizes). `ZERO` makes
    /// flushes free, as in the simulator.
    pub flush_cost: Duration,
    /// RNG seed for the schedule and delay sampling (thread scheduling
    /// keeps runs nondeterministic regardless).
    pub seed: u64,
    /// Optional partition episodes injected mid-run.
    pub partition: Option<LivePartition>,
    /// Site crashes (and recoveries) injected mid-run.
    pub crashes: Vec<LiveCrash>,
    /// Degraded-delay windows injected mid-run.
    pub degrades: Vec<LiveDegrade>,
    /// Envelope-level faults (duplicate / reorder / drop) to arm.
    pub env_faults: Vec<LiveEnvFault>,
    /// After the load window, how long to wait for in-flight transactions
    /// to decide before declaring the drain unclean.
    pub drain_timeout: Duration,
    /// Master leases for the linearizable read fast path (`None` = every
    /// read takes the shared-lock path).
    pub lease: Option<LeaseConfig>,
    /// Anti-entropy polling cadence: each replica asks its shard master
    /// for a version-stamped delta this often (`None` = stranded replicas
    /// only catch up through later commit shipping).
    pub anti_entropy: Option<Duration>,
    /// What to observe: stage spans, flight-recorder capacity, time-series
    /// bins. Defaults to [`ptp_obs::ObsConfig::off`] — the Null path, with
    /// near-zero overhead on the serving threads.
    pub obs: ptp_obs::ObsConfig,
}

impl LiveOptions {
    /// A small default cluster: 3 shards × 2 replicas over 6 sites,
    /// HL-3PC, uniform keys, 20% reads, 10% cross-shard, batching off.
    pub fn small(offered_rate: f64, duration: Duration) -> LiveOptions {
        LiveOptions {
            sites: 6,
            shards: 3,
            replication: 2,
            protocol: CommitProtocol::HuangLi,
            t: Duration::from_millis(20),
            offered_rate,
            duration,
            read_fraction: 0.2,
            cross_shard_fraction: 0.1,
            skew: KeySkew::Uniform,
            keys_per_shard: 64,
            batch: BatchConfig::off(),
            flush_cost: Duration::from_micros(400),
            seed: 7,
            partition: None,
            crashes: Vec::new(),
            degrades: Vec::new(),
            env_faults: Vec::new(),
            drain_timeout: Duration::from_secs(10),
            lease: None,
            anti_entropy: None,
            obs: ptp_obs::ObsConfig::off(),
        }
    }

    /// Installs a compiled [`ptp_livenet::LiveFaults`] bundle — the
    /// lowering target of `ptp_core`'s scenario timeline — replacing this
    /// run's partition, crash, degrade, and envelope-fault schedules.
    pub fn with_faults(mut self, faults: ptp_livenet::LiveFaults) -> LiveOptions {
        self.partition = faults.partition;
        self.crashes = faults.crashes;
        self.degrades = faults.degrades;
        self.env_faults = faults.env_faults;
        self
    }

    /// Validates the knobs that have hard domains.
    pub fn validate(&self) {
        assert!(self.sites >= 2, "a live cluster needs at least two sites");
        assert!(self.shards >= 1 && self.replication >= 1);
        assert!(self.offered_rate > 0.0, "offered rate must be positive");
        assert!((0.0..=1.0).contains(&self.read_fraction));
        assert!((0.0..=1.0).contains(&self.cross_shard_fraction));
        assert!(self.keys_per_shard >= 1);
        if let KeySkew::HotKey { hot_fraction } = self.skew {
            assert!((0.0..=1.0).contains(&hot_fraction));
        }
        if self.batch.enabled {
            assert!(!self.batch.window.is_zero());
        }
        if let Some(lease) = self.lease {
            assert!(
                !lease.period.is_zero() && lease.period < lease.duration,
                "lease needs 0 < period < duration"
            );
        }
        if let Some(period) = self.anti_entropy {
            assert!(!period.is_zero(), "anti-entropy period must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_options_validate() {
        LiveOptions::small(100.0, Duration::from_millis(500)).validate();
    }

    #[test]
    fn obs_defaults_to_the_null_path() {
        let o = LiveOptions::small(100.0, Duration::from_millis(500));
        assert!(!o.obs.enabled(), "observability must be off unless asked for");
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_batch_window_rejected() {
        let _ = BatchConfig::on(Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "offered rate")]
    fn zero_rate_rejected() {
        let mut o = LiveOptions::small(100.0, Duration::from_millis(500));
        o.offered_rate = 0.0;
        o.validate();
    }

    #[test]
    #[should_panic(expected = "period < duration")]
    fn lease_expiring_before_renewal_rejected() {
        let _ = LeaseConfig::new(Duration::from_millis(50), Duration::from_millis(50));
    }
}
