//! # ptp-live — sustained-traffic shard serving over real threads
//!
//! Every workload in this workspace so far ran under the discrete-event
//! simulator. This crate is the serving path the north star asks for: a
//! **long-running, multi-threaded shard server** hosting the `ptp-shard`
//! planning machinery and the `ptp-ddb` storage stack (WAL, strict-2PL
//! locks, pooled protocol participants) on one OS thread per site, with
//! messages delayed by the generic `ptp-livenet` router — bounded-delay
//! delivery, live partition episodes, optimistic undeliverable bounces.
//!
//! Load comes from an **open-loop driver** ([`driver`]): arrivals follow a
//! precomputed exponential schedule at a configured offered rate, with
//! uniform or hot-key skew and a read/write mix, injected on the wall clock
//! regardless of completions — so queueing delay lands in the recorded
//! latency instead of silently stretching the run. Latency percentiles come
//! from a hand-rolled log-bucketed histogram ([`hist`]).
//!
//! Two server-side optimizations are switchable per run ([`BatchConfig`]):
//! **group-commit WAL batching** (one simulated-fsync per batch window,
//! acked per transaction after its commit record's flush) and
//! **protocol-message coalescing** (all envelopes to one destination in a
//! window ride one channel send). `bench_live` records both modes at equal
//! offered load in `BENCH_live.json`.
//!
//! Live runs are nondeterministic (real threads, real clocks), so
//! correctness is asserted as **invariants**, not replay equality: the
//! post-run [`audit`](LiveReport::audit) checks atomicity (all sites agree
//! on every decision), durability (exactly one durable commit record per
//! committed transaction per involved replica), no lost or phantom writes
//! (every surviving value traces to a committed writer; committed writers'
//! effects survive), read legitimacy, and a clean drain on shutdown.
//!
//! ```
//! use ptp_live::{run_server, LiveOptions};
//! use std::time::Duration;
//!
//! let report = run_server(&LiveOptions::small(150.0, Duration::from_millis(300)));
//! assert!(report.audit.ok, "{:?}", report.audit.violations);
//! assert!(report.clean_drain);
//! assert_eq!(report.completed_writes, report.issued_writes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod node;

pub use config::{BatchConfig, KeySkew, LeaseConfig, LiveOptions};
pub use node::{Completion, LiveNode, NodeReport, Packet, WireMsg};
// The histogram moved to `ptp-obs` in PR 10; these re-exports keep the old
// `ptp_live::hist::LogHistogram` / `ptp_live::LatencySummary` paths alive.
pub use ptp_obs::hist;
pub use ptp_obs::{
    FlightEvent, FlightRecorder, LatencySummary, LogHistogram, ObsConfig, Registry, Series,
    StageTable, TxnSpan,
};

use driver::{OpKind, Schedule};
use ptp_ddb::site::ParticipantFactory;
use ptp_ddb::value::{Key, TxnId, Value};
use ptp_ddb::wal::Record;
use ptp_livenet::{Inbound, LiveConfig, LiveFaults, Outbound, Router};
use ptp_model::Decision;
use ptp_obs::{
    STAGE_COMMIT_WAIT, STAGE_LOCK_WAIT, STAGE_PROTOCOL, STAGE_QUEUE, STAGE_ROUNDS, STAGE_SERVE,
};
use ptp_shard::plan::PlanTable;
use ptp_shard::ShardTopology;
use ptp_simnet::SiteId;
use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One acked operation: decision, read value, ack instant, and the stage
/// span the serving master attached (recording runs only).
type CompletionEntry = (Decision, Option<Value>, Instant, Option<TxnSpan>);

/// The post-run storage audit: the driver's issue log checked against every
/// node's storage, WAL, and decision record.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// No invariant violated.
    pub ok: bool,
    /// `true` when the run had no partition (every invariant checked);
    /// partition runs skip replica-convergence checks (a ship bounced at a
    /// partition boundary legitimately leaves a replica stale).
    pub strict: bool,
    /// Write transactions checked.
    pub checked_writes: usize,
    /// Reads checked.
    pub checked_reads: usize,
    /// Whether every replica of every shard agreed on every pool key at
    /// shutdown. Always computed; only a *violation* in strict mode (a
    /// partition legitimately strands a replica — unless anti-entropy is
    /// on, which is exactly what the heal-convergence tests pin).
    pub converged: bool,
    /// Human-readable violations (capped at 20).
    pub violations: Vec<String>,
}

/// Everything a live serving run produced.
#[derive(Debug)]
pub struct LiveReport {
    /// The configured offered load (ops/sec).
    pub offered_rate: f64,
    /// *Committed* writes over the span from run start to the last commit
    /// ack — the goodput the cluster actually sustained (aborts complete
    /// fast; counting them would flatter a saturated run).
    pub achieved_rate: f64,
    /// Writes the driver injected.
    pub issued_writes: usize,
    /// Reads the driver injected.
    pub issued_reads: usize,
    /// Writes that reached a decision and were acked.
    pub completed_writes: usize,
    /// Acked commits.
    pub committed: usize,
    /// Acked aborts.
    pub aborted: usize,
    /// Reads answered.
    pub completed_reads: usize,
    /// Write latency percentiles.
    pub writes: LatencySummary,
    /// Read latency percentiles.
    pub reads: LatencySummary,
    /// Every operation completed and no node held in-flight state at
    /// shutdown.
    pub clean_drain: bool,
    /// The storage audit.
    pub audit: AuditReport,
    /// Wall-clock span of the whole run (load + drain + shutdown).
    pub elapsed: Duration,
    /// Stable-storage flushes across all sites.
    pub flushes: u64,
    /// Channel sends to the router across all sites.
    pub channel_sends: u64,
    /// Protocol messages carried (> `channel_sends` means coalescing
    /// squeezed multiple messages into one send).
    pub protocol_messages: u64,
    /// Whether group commit + coalescing were on.
    pub batching: bool,
    /// Reads served on the master-lease fast path across all sites.
    pub lease_reads: u64,
    /// Reads served under a shared lock across all sites.
    pub lock_reads: u64,
    /// Anti-entropy deltas installed across all sites.
    pub sync_installs: u64,
    /// The merged cluster-wide metrics registry (always built — counters
    /// fold from the per-node reports either way; latency histograms ride
    /// along under `write_latency_us` / `read_latency_us`).
    pub metrics: Registry,
    /// Stage attribution per (path, fault-phase, stage). Empty unless
    /// [`ObsConfig::spans`] was on.
    pub stages: StageTable,
    /// Per-bin completion counts and latency percentiles (`None` unless a
    /// series bin width was configured).
    pub series: Option<Series>,
    /// The merged flight-recorder dump, produced when the audit failed or
    /// the run failed to drain (and recorders were on).
    pub flight_dump: Option<String>,
}

/// Runs the full live pipeline: compile plans, spawn router + one thread
/// per site + the open-loop driver, serve the offered load, drain, shut
/// down, and audit. See the crate docs for what the report asserts.
pub fn run_server(opts: &LiveOptions) -> LiveReport {
    opts.validate();
    let topo = ShardTopology::uniform(opts.sites, opts.shards, opts.replication);
    let pools = topo.key_pool(opts.keys_per_shard);
    let schedule = driver::generate(opts, &topo, &pools);
    let plans = Arc::new(PlanTable::compile(topo.clone(), &schedule.specs));
    let n = opts.sites;

    let (router_tx, router_rx) = mpsc::channel::<Outbound<Packet>>();
    let (completions_tx, completions_rx) = mpsc::channel::<Completion>();
    let mut site_txs = Vec::with_capacity(n);
    let mut site_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel::<Inbound<Packet>>();
        site_txs.push(tx);
        site_rxs.push(rx);
    }

    let start = Instant::now();
    let live_config =
        LiveConfig { t: opts.t, run_timeout: opts.duration + opts.drain_timeout, seed: opts.seed };
    let faults = LiveFaults {
        partition: opts.partition.clone(),
        crashes: opts.crashes.clone(),
        degrades: opts.degrades.clone(),
        env_faults: opts.env_faults.clone(),
    };
    let router: Router<Packet> = Router::with_faults(live_config, faults, site_txs.clone(), start);
    let router_handle = std::thread::spawn(move || router.run(router_rx));

    let mut node_handles = Vec::with_capacity(n);
    for (i, rx) in site_rxs.into_iter().enumerate() {
        let plans = plans.clone();
        let router_tx = router_tx.clone();
        let completions_tx = completions_tx.clone();
        let (protocol, t, batch, flush_cost) = (opts.protocol, opts.t, opts.batch, opts.flush_cost);
        let (lease, anti_entropy, obs) = (opts.lease, opts.anti_entropy, opts.obs);
        node_handles.push(std::thread::spawn(move || {
            // Participant builders are Rc-based: construct inside the thread.
            let factory = ParticipantFactory::pooled(protocol.participant_builder());
            let node = LiveNode::new(
                SiteId(i as u16),
                plans,
                factory,
                t,
                batch,
                flush_cost,
                lease,
                anti_entropy,
                obs,
                start,
                router_tx,
                completions_tx,
            );
            node.run(rx)
        }));
    }
    drop(router_tx);
    drop(completions_tx);

    let driver_ops = schedule.ops.clone();
    let driver_txs = site_txs.clone();
    let driver_handle =
        std::thread::spawn(move || driver::run_driver(driver_ops, driver_txs, start));

    // Collect acks until every scheduled op completed or the drain deadline
    // passes (open loop: the driver never waits, so backlog drains here).
    let expected = schedule.ops.len();
    let deadline = start + opts.duration + opts.drain_timeout;
    let mut completions: HashMap<u32, CompletionEntry> = HashMap::new();
    let mut duplicate_acks = 0usize;
    while completions.len() < expected {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match completions_rx.recv_timeout(deadline - now) {
            Ok(c) => {
                if completions.insert(c.txn.0, (c.decision, c.value, c.at, c.span)).is_some() {
                    duplicate_acks += 1;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => break,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    // Grace: client acks are all in, but cross-shard ships and group-commit
    // finalizations may still be crossing the router; let replicas settle
    // before pulling the plug (a few delay bounds + batch windows — plus a
    // few anti-entropy rounds when the catch-up chain is on, so a healed
    // replica's last missed delta gets polled, answered, and installed).
    let grace = opts.t * 5
        + opts.batch.window * 5
        + Duration::from_millis(30)
        + opts.anti_entropy.map_or(Duration::ZERO, |p| p * 4 + opts.t * 4);
    let grace_deadline = Instant::now() + grace;
    loop {
        let now = Instant::now();
        if now >= grace_deadline {
            break;
        }
        match completions_rx.recv_timeout(grace_deadline - now) {
            Ok(c) => {
                if completions.insert(c.txn.0, (c.decision, c.value, c.at, c.span)).is_some() {
                    duplicate_acks += 1;
                }
            }
            Err(_) => break,
        }
    }

    for tx in &site_txs {
        let _ = tx.send(Inbound::Shutdown);
    }
    let _ = driver_handle.join();
    let mut reports: Vec<NodeReport> = Vec::with_capacity(n);
    for h in node_handles {
        reports.push(h.join().expect("site threads do not panic"));
    }
    drop(site_txs);
    let _ = router_handle.join();
    let elapsed = start.elapsed();

    // Latency, measured from each op's scheduled arrival.
    let mut write_hist = LogHistogram::new();
    let mut read_hist = LogHistogram::new();
    let mut committed = 0usize;
    let mut aborted = 0usize;
    let mut completed_writes = 0usize;
    let mut completed_reads = 0usize;
    let mut last_write_done: Option<Instant> = None;
    let mut stages = StageTable::new();
    let mut series = opts.obs.series_bin.map(Series::new);
    for op in &schedule.ops {
        let Some((decision, _, at, span)) = completions.get(&op.txn.0) else { continue };
        let latency = at.saturating_duration_since(start + op.at).as_micros() as u64;
        match op.kind {
            OpKind::Write => {
                write_hist.record(latency);
                completed_writes += 1;
                match decision {
                    Decision::Commit => {
                        committed += 1;
                        last_write_done =
                            Some(last_write_done.map_or(*at, |prev: Instant| prev.max(*at)));
                    }
                    Decision::Abort => aborted += 1,
                }
            }
            OpKind::Read(_) => {
                read_hist.record(latency);
                completed_reads += 1;
            }
        }
        if let Some(s) = &mut series {
            s.record(at.saturating_duration_since(start), latency);
        }
        if let Some(span) = span {
            attribute_span(&mut stages, opts, op, span, start, *at);
        }
    }
    let achieved_rate = match last_write_done {
        Some(done) if committed > 0 => {
            committed as f64 / done.duration_since(start).as_secs_f64().max(1e-9)
        }
        _ => 0.0,
    };

    let clean_drain =
        completions.len() == expected && reports.iter().all(|r| r.in_flight_at_shutdown == 0);
    // Partitions, crashes, and envelope faults all legitimately leave
    // replicas stale; only degrades (which merely slow delivery) keep the
    // full replica-convergence checks on.
    let strict = opts.partition.is_none() && opts.crashes.is_empty() && opts.env_faults.is_empty();
    let audit = audit(&schedule, &plans, &pools, &completions, duplicate_acks, &reports, strict);

    // The cluster-wide metrics snapshot: per-node counters folded together,
    // the two latency populations riding along as histograms.
    let mut metrics = Registry::new();
    for r in &reports {
        metrics.add("flushes", r.flushes);
        metrics.add("channel_sends", r.channel_sends);
        metrics.add("protocol_messages", r.protocol_messages);
        metrics.add("reads_lease", r.reads_lease);
        metrics.add("reads_local", r.reads_local);
        metrics.add("sync_installs", r.sync_installs);
    }
    metrics.add("committed", committed as u64);
    metrics.add("aborted", aborted as u64);
    metrics.add("completed_reads", completed_reads as u64);
    metrics.set_gauge("sites", n as i64);
    metrics.merge_hist("write_latency_us", &write_hist);
    metrics.merge_hist("read_latency_us", &read_hist);

    // The flight recorder earns its keep exactly here: an audit failure or
    // a stuck drain dumps the merged event tail of every site.
    let flight_dump = if (!audit.ok
        || completions.len() != expected
        || reports.iter().any(|r| r.in_flight_at_shutdown > 0))
        && opts.obs.flight_capacity > 0
    {
        let mut events: Vec<FlightEvent> = Vec::new();
        let mut dropped = 0u64;
        for r in &reports {
            if let Some(f) = &r.flight {
                dropped += f.dropped();
                events.extend(f.tail());
            }
        }
        events.sort_by_key(|e| (e.at_us, e.site));
        let reason = if !audit.ok {
            format!(
                "invariant audit failed: {}",
                audit.violations.first().map_or("(no detail)", |v| v.as_str())
            )
        } else {
            format!("run failed to drain: {} of {expected} operations completed", completions.len())
        };
        let dump = FlightRecorder::render_dump(&reason, dropped, &events);
        eprintln!("--- flight-recorder dump ---\n{dump}");
        Some(dump)
    } else {
        None
    };

    LiveReport {
        offered_rate: opts.offered_rate,
        achieved_rate,
        issued_writes: schedule.writes,
        issued_reads: schedule.reads,
        completed_writes,
        committed,
        aborted,
        completed_reads,
        writes: LatencySummary::from_hist(&write_hist),
        reads: LatencySummary::from_hist(&read_hist),
        clean_drain,
        audit,
        elapsed,
        flushes: reports.iter().map(|r| r.flushes).sum(),
        channel_sends: reports.iter().map(|r| r.channel_sends).sum(),
        protocol_messages: reports.iter().map(|r| r.protocol_messages).sum(),
        batching: opts.batch.enabled,
        lease_reads: reports.iter().map(|r| r.reads_lease).sum(),
        lock_reads: reports.iter().map(|r| r.reads_local).sum(),
        sync_installs: reports.iter().map(|r| r.sync_installs).sum(),
        metrics,
        stages,
        series,
        flight_dump,
    }
}

/// Classifies a completion instant against the run's fault schedule:
/// `"none"` for fault-free runs, else `"before"` / `"fault"` / `"after"`
/// relative to the configured partition episodes and crash windows (the
/// harness knows the schedule; the nodes never do).
fn fault_phase(opts: &LiveOptions, at: Duration) -> &'static str {
    let mut windows: Vec<(Duration, Option<Duration>)> = Vec::new();
    if let Some(p) = &opts.partition {
        for ep in p.episodes() {
            windows.push((ep.from, ep.until));
        }
    }
    for c in &opts.crashes {
        windows.push((c.after, c.recover_after));
    }
    if windows.is_empty() {
        return "none";
    }
    if windows.iter().any(|(from, until)| at >= *from && until.is_none_or(|u| at < u)) {
        return "fault";
    }
    let first = windows.iter().map(|(from, _)| *from).min().expect("nonempty");
    if at < first {
        "before"
    } else {
        "after"
    }
}

/// Turns one completed operation's span into stage-table rows. The stages
/// are consecutive deltas over a single timeline — scheduled arrival →
/// mailbox receive → locks held → protocol decision → ack — so summing the
/// table reconstructs (almost all of) the measured end-to-end latency.
fn attribute_span(
    stages: &mut StageTable,
    opts: &LiveOptions,
    op: &driver::ScheduledOp,
    span: &TxnSpan,
    start: Instant,
    acked: Instant,
) {
    let us = |later: Instant, earlier: Instant| {
        later.saturating_duration_since(earlier).as_micros() as u64
    };
    let phase = fault_phase(opts, acked.saturating_duration_since(start));
    stages.add(span.path, phase, STAGE_QUEUE, us(span.recv, start + op.at));
    match op.kind {
        OpKind::Write => {
            let Some(locked) = span.locked else { return };
            stages.add(span.path, phase, STAGE_LOCK_WAIT, us(locked, span.recv));
            let Some(decided) = span.decided else { return };
            stages.add(span.path, phase, STAGE_PROTOCOL, us(decided, locked));
            stages.add(span.path, phase, STAGE_COMMIT_WAIT, us(acked, decided));
            stages.add(span.path, phase, STAGE_ROUNDS, span.rounds as u64);
        }
        OpKind::Read(_) => {
            if let Some(locked) = span.locked {
                stages.add(span.path, phase, STAGE_LOCK_WAIT, us(locked, span.recv));
            }
            stages.add(span.path, phase, STAGE_SERVE, us(acked, span.locked.unwrap_or(span.recv)));
        }
    }
}

/// The storage audit: checks the invariants listed in the crate docs
/// against the driver's issue log. Strict mode (no partition) additionally
/// requires full replica convergence.
fn audit(
    schedule: &Schedule,
    plans: &PlanTable,
    pools: &[Vec<Key>],
    completions: &HashMap<u32, CompletionEntry>,
    duplicate_acks: usize,
    reports: &[NodeReport],
    strict: bool,
) -> AuditReport {
    let mut violations: Vec<String> = Vec::new();
    let mut violate = |msg: String| {
        if violations.len() < 20 {
            violations.push(msg);
        }
    };
    let topo = &plans.topology;

    if duplicate_acks > 0 {
        violate(format!("{duplicate_acks} operations were acknowledged more than once"));
    }

    // Issued-id sets.
    let issued: std::collections::HashSet<u32> = schedule.ops.iter().map(|o| o.txn.0).collect();
    for id in completions.keys() {
        if !issued.contains(id) {
            violate(format!("txn{id} was acked but never issued"));
        }
    }

    // Durable commit-record counts per (site, txn).
    let mut durable_commits: Vec<BTreeMap<TxnId, usize>> = Vec::with_capacity(reports.len());
    for r in reports {
        let mut per: BTreeMap<TxnId, usize> = BTreeMap::new();
        for rec in r.wal.durable() {
            if let Record::Commit { txn } = rec {
                *per.entry(*txn).or_default() += 1;
            }
        }
        durable_commits.push(per);
    }

    // Per-write-transaction checks.
    let mut checked_writes = 0usize;
    let mut committed_writers_of: HashMap<Key, Vec<TxnId>> = HashMap::new();
    for spec in &schedule.specs {
        checked_writes += 1;
        let txn = spec.id;
        let plan = plans.get(txn).expect("audited transactions are planned");
        let ack = completions.get(&txn.0).map(|(d, ..)| *d);

        // Atomicity: every decision recorded anywhere (including the ack)
        // agrees.
        let mut seen: Option<(Decision, String)> = None;
        let mut check = |d: Decision, whom: String, violate: &mut dyn FnMut(String)| {
            match &seen {
                Some((prev, prev_whom)) if *prev != d => {
                    violate(format!("{txn}: {whom} decided {d:?} but {prev_whom} decided {prev:?}"))
                }
                _ => {}
            }
            if seen.is_none() {
                seen = Some((d, whom));
            }
        };
        if let Some(d) = ack {
            check(d, "client ack".to_string(), &mut violate);
        }
        for r in reports {
            if let Some(d) = r.finished.get(&txn) {
                check(*d, format!("site {}", r.site), &mut violate);
            }
        }

        // Duplicated commit records are a violation everywhere; commit
        // records for an aborted transaction too.
        for (r, per) in reports.iter().zip(&durable_commits) {
            let count = per.get(&txn).copied().unwrap_or(0);
            if count > 1 {
                violate(format!("{txn}: {count} durable commit records at site {}", r.site));
            }
            if count > 0 && ack == Some(Decision::Abort) {
                violate(format!(
                    "{txn}: durable commit record at site {} despite abort ack",
                    r.site
                ));
            }
        }

        if ack == Some(Decision::Commit) {
            for w in &spec.writes {
                committed_writers_of.entry(w.key.clone()).or_default().push(txn);
            }
            if strict {
                // Durability: every replica of every involved shard holds
                // exactly one durable commit record and recorded the commit.
                for &shard in &plan.shards {
                    for &site in topo.group(shard) {
                        let r = &reports[site.index()];
                        let count = durable_commits[site.index()].get(&txn).copied().unwrap_or(0);
                        if count != 1 {
                            violate(format!(
                                "{txn}: committed but site {site} holds {count} durable commit records"
                            ));
                        }
                        if r.finished.get(&txn) != Some(&Decision::Commit) {
                            violate(format!("{txn}: committed but site {site} never recorded it"));
                        }
                    }
                }
            }
        }
    }

    // Per-key value checks: every surviving value traces to a committed
    // writer (no phantom/lost writes); replica agreement is computed for
    // every run (the `converged` flag) but only violates in strict mode.
    let mut converged = true;
    for (shard, pool) in pools.iter().enumerate() {
        for key in pool {
            let group = topo.group(shard);
            let legitimate = committed_writers_of.get(key);
            let mut first: Option<(SiteId, Option<Value>)> = None;
            for &site in group {
                let value = reports[site.index()].storage.get(key).cloned();
                if let Some(v) = &value {
                    let writer = v.as_u64().map(|id| TxnId(id as u32));
                    let ok = writer.is_some_and(|w| legitimate.is_some_and(|ws| ws.contains(&w)));
                    if !ok {
                        violate(format!(
                            "key {key} at site {site} holds a value from no committed writer"
                        ));
                    }
                }
                match &first {
                    None => first = Some((site, value)),
                    Some((first_site, fv)) if *fv != value => {
                        converged = false;
                        if strict {
                            violate(format!(
                                "key {key}: site {site} and site {first_site} disagree on the value"
                            ));
                        }
                    }
                    _ => {}
                }
            }
            if strict && legitimate.is_some_and(|ws| !ws.is_empty()) {
                if let Some((_, None)) = &first {
                    violate(format!("key {key}: committed writes were lost (no value survives)"));
                }
            }
        }
    }

    // Read legitimacy: a returned value must come from an issued write to
    // that key (reads of never-written keys legitimately return nothing).
    let mut checked_reads = 0usize;
    let mut writers_of: HashMap<Key, Vec<TxnId>> = HashMap::new();
    for spec in &schedule.specs {
        for w in &spec.writes {
            writers_of.entry(w.key.clone()).or_default().push(spec.id);
        }
    }
    for op in &schedule.ops {
        let OpKind::Read(key) = &op.kind else { continue };
        let Some((_, value, ..)) = completions.get(&op.txn.0) else { continue };
        checked_reads += 1;
        if let Some(v) = value {
            let ok = v
                .as_u64()
                .map(|id| TxnId(id as u32))
                .is_some_and(|w| writers_of.get(key).is_some_and(|ws| ws.contains(&w)));
            if !ok {
                violate(format!("read of key {key} returned a value from no issued writer"));
            }
        }
    }

    AuditReport {
        ok: violations.is_empty(),
        strict,
        checked_writes,
        checked_reads,
        converged,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_without_batching_is_clean() {
        let mut opts = LiveOptions::small(200.0, Duration::from_millis(400));
        opts.flush_cost = Duration::from_micros(50);
        let report = run_server(&opts);
        assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
        assert!(report.clean_drain, "unclean drain: {report:?}");
        assert_eq!(report.completed_writes, report.issued_writes);
        assert_eq!(report.completed_reads, report.issued_reads);
        assert!(report.committed > 0, "some writes should commit");
        // Without coalescing, every protocol message is its own send.
        assert_eq!(report.channel_sends, report.protocol_messages);
        assert!(report.writes.p50_us > 0);
    }

    #[test]
    fn small_run_with_batching_is_clean() {
        let mut opts = LiveOptions::small(200.0, Duration::from_millis(400));
        opts.flush_cost = Duration::from_micros(50);
        opts.batch = BatchConfig::on(Duration::from_millis(4));
        let report = run_server(&opts);
        assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
        assert!(report.clean_drain, "unclean drain: {report:?}");
        assert_eq!(report.completed_writes, report.issued_writes);
        assert!(report.committed > 0);
        assert!(report.batching);
        assert!(report.flushes > 0);
    }

    #[test]
    fn hot_key_contention_still_audits_clean() {
        let mut opts = LiveOptions::small(150.0, Duration::from_millis(400));
        opts.skew = KeySkew::HotKey { hot_fraction: 0.5 };
        opts.flush_cost = Duration::ZERO;
        let report = run_server(&opts);
        assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
        assert!(report.clean_drain, "unclean drain: {report:?}");
    }

    #[test]
    fn configured_read_fraction_is_served_through_real_paths() {
        // The driver's read mix must be *served*, not just synthesized:
        // every issued read completes through an accounted path (lease or
        // shared-lock), and the issued mix tracks the configured fraction.
        let mut opts = LiveOptions::small(300.0, Duration::from_millis(400));
        opts.read_fraction = 0.4;
        opts.flush_cost = Duration::ZERO;
        let report = run_server(&opts);
        assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
        assert!(report.clean_drain, "unclean drain: {report:?}");
        let issued = (report.issued_reads + report.issued_writes) as f64;
        let fraction = report.issued_reads as f64 / issued;
        assert!((0.25..=0.55).contains(&fraction), "read mix {fraction} far from 0.4");
        assert_eq!(report.completed_reads, report.issued_reads);
        assert_eq!(
            report.lease_reads + report.lock_reads,
            report.completed_reads as u64,
            "every served read is accounted to a path"
        );
        // Leases are off: nothing may ride the fast path.
        assert_eq!(report.lease_reads, 0);
    }

    #[test]
    fn lease_fast_path_serves_reads_in_a_clean_run() {
        let mut opts = LiveOptions::small(300.0, Duration::from_millis(400));
        opts.read_fraction = 0.5;
        opts.flush_cost = Duration::ZERO;
        // Grants must outlive the renewal round trip (up to 2·t = 40ms of
        // router delay) by a comfortable margin, or they expire in transit.
        opts.lease = Some(LeaseConfig::new(Duration::from_millis(10), Duration::from_millis(150)));
        let report = run_server(&opts);
        assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
        assert!(report.clean_drain, "unclean drain: {report:?}");
        assert_eq!(
            report.lease_reads + report.lock_reads,
            report.completed_reads as u64,
            "every served read is accounted to a path"
        );
        // With renewals every 8ms and 40ms grants on an unpartitioned
        // cluster, the lease holds for virtually the whole run.
        assert!(
            report.lease_reads > report.lock_reads,
            "lease fast path barely used: {} lease vs {} lock",
            report.lease_reads,
            report.lock_reads
        );
    }

    #[test]
    fn recording_run_attributes_latency_to_stages() {
        let mut opts = LiveOptions::small(250.0, Duration::from_millis(400));
        opts.read_fraction = 0.3;
        opts.flush_cost = Duration::from_micros(50);
        opts.obs = ObsConfig::recording();
        opts.obs.series_bin = Some(Duration::from_millis(100));
        let report = run_server(&opts);
        assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
        assert!(report.clean_drain, "unclean drain: {report:?}");

        // The stage table accounts for (nearly) all measured latency: the
        // stages are consecutive deltas of one timeline, so only saturating
        // truncation can shave microseconds off.
        assert!(!report.stages.is_empty());
        let measured = report.metrics.hist("write_latency_us").unwrap().sum()
            + report.metrics.hist("read_latency_us").unwrap().sum();
        let attributed = report.stages.attributed_us();
        assert!(
            attributed as f64 >= measured as f64 * 0.95,
            "stage table covers {attributed} of {measured} us"
        );
        // Fault-free runs classify every row as phase "none".
        for ((_, phase, _), _) in report.stages.rows() {
            assert_eq!(*phase, "none");
        }
        // Committed writes crossed the protocol stage on a write path.
        assert!(report.stages.cell("write-single", "none", STAGE_PROTOCOL).is_some());

        // The series saw every completion.
        let series = report.series.expect("series was configured");
        let binned: u64 = series.bins().iter().map(|b| b.count).sum();
        assert_eq!(binned as usize, report.completed_writes + report.completed_reads);

        // The registry mirrors the report's flat counters.
        assert_eq!(report.metrics.counter("flushes"), report.flushes);
        assert_eq!(report.metrics.counter("committed"), report.committed as u64);

        // A clean run dumps nothing.
        assert!(report.flight_dump.is_none());
    }

    #[test]
    fn null_sink_records_no_stages_or_series() {
        let mut opts = LiveOptions::small(150.0, Duration::from_millis(300));
        opts.flush_cost = Duration::ZERO;
        let report = run_server(&opts);
        assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
        assert!(report.stages.is_empty());
        assert!(report.series.is_none());
        assert!(report.flight_dump.is_none());
        // The metrics registry still folds the per-node counters.
        assert_eq!(report.metrics.counter("protocol_messages"), report.protocol_messages);
    }

    #[test]
    fn failed_drain_dumps_the_flight_recorder() {
        // Permanently crash shard 0's master at t = 0: every operation
        // routed to it is lost, the drain deadline passes unfinished, and
        // the merged flight-recorder tail explains what was in flight.
        let topo = ptp_shard::ShardTopology::uniform(6, 3, 2);
        let master = topo.master(0);
        let mut opts = LiveOptions::small(200.0, Duration::from_millis(250));
        opts.flush_cost = Duration::ZERO;
        opts.drain_timeout = Duration::from_millis(600);
        opts.crashes = vec![ptp_livenet::LiveCrash::crash(master, Duration::ZERO)];
        opts.obs = ObsConfig::recording();
        let report = run_server(&opts);
        assert!(!report.clean_drain, "the crashed master must strand its operations");
        let dump = report.flight_dump.expect("an undrained run must dump the recorder");
        assert!(dump.contains("\"reason\": \"run failed to drain"), "{dump}");
        assert!(dump.contains("\"events\": ["), "{dump}");
        // Sites other than the dead master were still serving: the merged
        // tail has real traffic in it.
        assert!(
            dump.contains("\"kind\": \"recv\"") || dump.contains("\"kind\": \"send\""),
            "{dump}"
        );
        // Completions that did arrive land in fault phase (a permanent
        // crash window spans the whole run).
        for ((_, phase, _), _) in report.stages.rows() {
            assert_eq!(*phase, "fault");
        }
    }

    #[test]
    fn healed_replica_converges_via_anti_entropy() {
        // A replica is cut while cross-shard commits ship outcomes past it
        // (bounced at the partition boundary, never retried), then heals.
        // With the sync chain on, the replica polls its master and installs
        // the missed versions; every replica pair agrees at shutdown even
        // though the run had a partition.
        let topo = ptp_shard::ShardTopology::uniform(6, 3, 2);
        let replica = topo.group(0)[1];
        let mut opts = LiveOptions::small(400.0, Duration::from_millis(500));
        opts.read_fraction = 0.0;
        opts.cross_shard_fraction = 1.0;
        opts.flush_cost = Duration::ZERO;
        opts.keys_per_shard = 8;
        opts.anti_entropy = Some(Duration::from_millis(15));
        opts.partition = Some(ptp_livenet::LivePartition::new(vec![ptp_livenet::LiveEpisode {
            from: Duration::from_millis(100),
            until: Some(Duration::from_millis(300)),
            groups: vec![vec![replica]],
        }]));
        let report = run_server(&opts);
        assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
        assert!(report.clean_drain, "unclean drain: {report:?}");
        assert!(report.sync_installs > 0, "the stranded replica must install deltas");
        assert!(
            report.audit.converged,
            "anti-entropy must reconverge every replica after the heal"
        );
    }
}
