//! The live site thread: `ptp-shard`'s planning/storage/protocol stack
//! driven by wall-clock messages and timers instead of the simulator.
//!
//! A [`LiveNode`] mirrors `ptp_shard::ShardNode` — same plan-routed virtual
//! site ids, same lock/WAL/storage discipline, same cross-shard outcome
//! shipping — re-hosted on an OS thread behind an mpsc mailbox. Two things
//! exist only here:
//!
//! * **Group-commit WAL batching** — with [`BatchConfig::enabled`], log
//!   records are appended volatile and flushed once per batch window
//!   (paying the simulated stable-storage cost once for the whole batch);
//!   each committed transaction is acknowledged individually after the
//!   flush that made its commit record durable. With batching off, every
//!   flush point of the simulator (`Begin`, `Commit`, `Applied`, `Abort`
//!   force writes) pays the cost on the spot.
//! * **Protocol-message coalescing** — outgoing messages buffer per
//!   destination and ride one channel send (one [`Packet`]) per window.
//!   The window flush order is load-bearing: the WAL flushes *before* the
//!   buffers drain, so no vote or decision physically leaves the site
//!   before the log records that precede it are durable.

use crate::config::{BatchConfig, LeaseConfig};
use ptp_ddb::locks::{LockGrant, LockMode, LockTable};
use ptp_ddb::site::{ParticipantFactory, ParticipantPool};
use ptp_ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_ddb::wal::{Record, Wal};
use ptp_ddb::Storage;
use ptp_livenet::{Inbound, Outbound};
use ptp_model::Decision;
use ptp_obs::{FlightRecorder, ObsConfig, TxnSpan};
use ptp_protocols::api::{Action, CommitMsg, Participant, TimerTag, Vote};
use ptp_shard::plan::PlanTable;
use ptp_shard::{LEASE_ACK, LEASE_RENEW, SHARD_ABORT, SHARD_APPLY, SYNC_REQ, SYNC_RESP};
use ptp_simnet::SiteId;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Message kind a client driver injects to submit a planned write
/// transaction at its master.
pub const CLIENT_XACT: &str = "client-xact";
/// Message kind a client driver injects to read one key at its shard
/// master (carries the key as a dummy `WriteOp`).
pub const CLIENT_READ: &str = "client-read";
/// Read operations use transaction ids at or above this; write plans never
/// do, so the two namespaces cannot collide.
pub const READ_BASE: u32 = 0x8000_0000;
/// Synthetic transaction ids for anti-entropy installs: each delta a
/// replica accepts lands in its WAL under a fresh id from this range.
pub const SYNC_APPLY_BASE: u32 = 0xC000_0000;
/// Lease-renewal control ids: `LEASE_CTRL_BASE | round << 8 | shard`. The
/// round byte lets the master discard acks of superseded renewals, so a
/// grant is never anchored later than the renewal its replica answered.
pub const LEASE_CTRL_BASE: u32 = 0xFFFE_0000;
/// Anti-entropy control ids: `SYNC_CTRL_BASE | shard`.
pub const SYNC_CTRL_BASE: u32 = 0xFFFF_0000;

/// One protocol-or-control message between sites.
#[derive(Debug, Clone)]
pub struct WireMsg {
    /// Which transaction this belongs to.
    pub txn: TxnId,
    /// The commit-protocol (or shipping/client) message.
    pub inner: CommitMsg,
    /// Attached write set (`xact` and `shard-apply` carry one; reads carry
    /// their key as a single dummy write).
    pub writes: Option<Vec<WriteOp>>,
    /// Per-key versions assigned by the sending shard master at commit.
    /// Replicas install a shipped write only if its version is newer than
    /// what they already hold — ships to the same key ride independent
    /// delays and can arrive out of commit order (see `LiveNode` docs).
    pub versions: Option<Vec<(Key, u64)>>,
}

/// What rides the router between live sites: one or more [`WireMsg`]s to
/// the same destination, coalesced into a single channel send with a single
/// sampled delay.
#[derive(Debug, Clone)]
pub struct Packet(pub Vec<WireMsg>);

impl ptp_livenet::Tagged for Packet {
    /// A coalesced packet is matched by its first inner message's kind —
    /// with coalescing off (the fault-injection configuration), every
    /// packet carries exactly one message and this is exact.
    fn tag(&self) -> &'static str {
        self.0.first().map_or("empty", |m| ptp_simnet::Payload::kind(&m.inner))
    }
}

/// A client-visible operation outcome, sent to the harness as it happens.
#[derive(Debug)]
pub struct Completion {
    /// The operation (write plan or read id).
    pub txn: TxnId,
    /// Commit/abort for writes; reads always "commit".
    pub decision: Decision,
    /// The value a read returned (`None` for writes and missing keys).
    pub value: Option<Value>,
    /// When the acknowledging site completed it.
    pub at: Instant,
    /// Stage boundaries the serving node stamped (`None` unless
    /// [`ObsConfig::spans`] is on).
    pub span: Option<TxnSpan>,
}

/// What a site thread hands back at shutdown.
#[derive(Debug)]
pub struct NodeReport {
    /// The site.
    pub site: SiteId,
    /// Committed storage at shutdown.
    pub storage: Storage,
    /// The WAL at shutdown (after a final window flush).
    pub wal: Wal,
    /// Every decision this site recorded.
    pub finished: BTreeMap<TxnId, Decision>,
    /// Transactions still in flight at shutdown (0 = clean drain).
    pub in_flight_at_shutdown: usize,
    /// Stable-storage flushes paid (each cost `flush_cost`).
    pub flushes: u64,
    /// Channel sends to the router.
    pub channel_sends: u64,
    /// Protocol messages carried (≥ `channel_sends` when coalescing).
    pub protocol_messages: u64,
    /// Reads served on the master-lease fast path (no lock round).
    pub reads_lease: u64,
    /// Reads served under a shared lock from committed storage.
    pub reads_local: u64,
    /// Anti-entropy deltas this site installed as a replica.
    pub sync_installs: u64,
    /// The site's flight recorder (`None` unless a capacity was
    /// configured), carrying the event tail for failure dumps.
    pub flight: Option<FlightRecorder>,
}

/// Per-transaction protocol state: which pool slot runs it.
struct TxnSlot {
    pool: (u16, u16),
    participant: usize,
}

/// A transaction waiting for locks (mirrors `ShardNode`).
enum Parked {
    Xact {
        from: SiteId,
        writes: Vec<WriteOp>,
    },
    Apply {
        writes: Vec<WriteOp>,
        versions: Option<Vec<(Key, u64)>>,
    },
    /// A client read queued behind a conflicting exclusive holder; served
    /// (and acked) the moment its shared grant arrives.
    Read {
        key: Key,
    },
}

/// A decided transaction waiting for the group-commit flush that makes its
/// commit record durable (batching mode only; locks stay held until the
/// window finalizes it).
enum PendingFinal {
    /// Decided by this site's protocol participant (acked/shipped by the
    /// window flush).
    Decide(TxnId),
    /// A shipped cross-shard apply.
    Apply(TxnId),
}

/// One live database site.
pub struct LiveNode {
    me: SiteId,
    n: usize,
    plans: Arc<PlanTable>,
    factory: ParticipantFactory,
    pools: BTreeMap<(u16, u16), ParticipantPool>,
    storage: Storage,
    wal: Wal,
    locks: LockTable,
    slots: BTreeMap<TxnId, TxnSlot>,
    parked: BTreeMap<TxnId, Parked>,
    pending: Vec<PendingFinal>,
    pending_set: BTreeSet<TxnId>,
    finished: BTreeMap<TxnId, Decision>,
    /// Wall-clock protocol timers with re-arm generations (see
    /// `ptp-livenet`'s site runner for why the generation is load-bearing).
    timers: HashMap<(TxnId, TimerTag), (Instant, u64)>,
    generation: u64,
    t: Duration,
    batch: BatchConfig,
    flush_cost: Duration,
    outbuf: Vec<Vec<WireMsg>>,
    /// Per-key write versions. Each key's shard master is the version
    /// authority: it assigns the next version at every commit touching the
    /// key (its lock table serializes them). Everyone else — group slaves
    /// applying through the protocol, replicas installing ships — adopts
    /// the stamped version, and ships older than what is already installed
    /// are skipped. Without this, two ships racing through the router (or a
    /// ship racing a later protocol commit) could install out of commit
    /// order and leave a replica permanently behind the master.
    key_version: HashMap<Key, u64>,
    /// Versions this site assigned (as authority) at commit, keyed by
    /// transaction; attached to every outgoing message of that transaction.
    out_stamps: HashMap<TxnId, Vec<(Key, u64)>>,
    /// Versions received for transactions this site has not yet committed.
    in_stamps: HashMap<TxnId, Vec<(Key, u64)>>,
    router: Sender<Outbound<Packet>>,
    completions: Sender<Completion>,
    crashed: bool,
    flushes: u64,
    channel_sends: u64,
    protocol_messages: u64,
    /// Master-lease configuration (`None` = no read fast path).
    lease: Option<LeaseConfig>,
    /// Anti-entropy polling period (`None` = no replica catch-up chain).
    anti_entropy: Option<Duration>,
    /// As master: per-(shard, replica) grant expiry. The fast path needs
    /// every replica's grant live *now* — a lapsed grant (partition,
    /// crash, or sheer delay) silently demotes reads to the lock path.
    lease_grants: HashMap<(usize, u16), Instant>,
    /// As master: send instants of recent renewal rounds, keyed by
    /// `(shard, round)`. An ack arms a grant anchored at the instant *its*
    /// round went out — a slow ack arms a correspondingly shorter grant,
    /// never one extended past what the replica promised. Rounds older
    /// than a grant lifetime are pruned (their grants would be dead).
    lease_rounds: HashMap<(usize, u8), Instant>,
    lease_round_seq: u8,
    /// As replica: fresh ids for anti-entropy installs.
    sync_seq: u32,
    reads_lease: u64,
    reads_local: u64,
    sync_installs: u64,
    /// Observability policy: which of the instruments below are live.
    obs: ObsConfig,
    /// Run start, the zero point for flight-recorder timestamps.
    start: Instant,
    /// In-flight stage spans (populated only with [`ObsConfig::spans`]).
    spans: HashMap<TxnId, TxnSpan>,
    /// The per-site event ring (`None` = the Null path).
    flight: Option<FlightRecorder>,
}

impl LiveNode {
    /// A site hosting its slice of the plan table. The factory is built by
    /// the caller *inside the site thread* (participant builders are
    /// `Rc`-based and must not cross threads).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: SiteId,
        plans: Arc<PlanTable>,
        factory: ParticipantFactory,
        t: Duration,
        batch: BatchConfig,
        flush_cost: Duration,
        lease: Option<LeaseConfig>,
        anti_entropy: Option<Duration>,
        obs: ObsConfig,
        start: Instant,
        router: Sender<Outbound<Packet>>,
        completions: Sender<Completion>,
    ) -> LiveNode {
        let n = plans.topology.sites();
        assert!(me.index() < n);
        LiveNode {
            me,
            n,
            plans,
            factory,
            pools: BTreeMap::new(),
            storage: Storage::new(),
            wal: Wal::new(),
            locks: LockTable::new(),
            slots: BTreeMap::new(),
            parked: BTreeMap::new(),
            pending: Vec::new(),
            pending_set: BTreeSet::new(),
            finished: BTreeMap::new(),
            timers: HashMap::new(),
            generation: 0,
            t,
            batch,
            flush_cost,
            outbuf: (0..n).map(|_| Vec::new()).collect(),
            key_version: HashMap::new(),
            out_stamps: HashMap::new(),
            in_stamps: HashMap::new(),
            router,
            completions,
            crashed: false,
            flushes: 0,
            channel_sends: 0,
            protocol_messages: 0,
            lease,
            anti_entropy,
            lease_grants: HashMap::new(),
            lease_rounds: HashMap::new(),
            lease_round_seq: 0,
            sync_seq: 0,
            reads_lease: 0,
            reads_local: 0,
            sync_installs: 0,
            flight: (obs.flight_capacity > 0).then(|| FlightRecorder::new(obs.flight_capacity)),
            obs,
            start,
            spans: HashMap::new(),
        }
    }

    // ---- observability ----

    /// Records a flight event when the recorder is on (the Null path is a
    /// single branch).
    fn flight_log(&mut self, kind: &'static str, tag: &'static str, a: u64, b: u64) {
        if let Some(f) = &mut self.flight {
            let at_us = Instant::now().saturating_duration_since(self.start).as_micros() as u64;
            f.log(at_us, self.me.0 as u64, kind, tag, a, b);
        }
    }

    /// Marks the lock-grant boundary on an in-flight span (idempotent: the
    /// first grant instant wins, so an unpark does not overwrite it).
    fn span_mark_locked(&mut self, txn: TxnId, now: Instant) {
        if let Some(s) = self.spans.get_mut(&txn) {
            if s.locked.is_none() {
                s.locked = Some(now);
            }
        }
    }

    /// Marks the protocol-decision boundary on an in-flight span.
    fn span_mark_decided(&mut self, txn: TxnId) {
        if let Some(s) = self.spans.get_mut(&txn) {
            if s.decided.is_none() {
                s.decided = Some(Instant::now());
            }
        }
    }

    // ---- stable storage ----

    /// One stable-storage flush: busy-holds the site for `flush_cost`
    /// (the simulated fsync) and advances the WAL watermark.
    fn spin_flush(&mut self) {
        if !self.flush_cost.is_zero() {
            let until = Instant::now() + self.flush_cost;
            while Instant::now() < until {
                std::hint::spin_loop();
            }
        }
        self.wal.flush();
        self.flushes += 1;
    }

    /// A force write: append + immediate flush (the batching-off path,
    /// mirroring the simulator's `append_durable` flush points).
    fn force(&mut self, rec: Record) {
        self.wal.append(rec);
        self.spin_flush();
    }

    // ---- outgoing messages ----

    fn send_wire(&mut self, dst: SiteId, mut msg: WireMsg) {
        // Every message of a committed transaction carries the versions this
        // site assigned as authority, so whatever message triggers the
        // receiver's apply delivers them.
        if msg.versions.is_none() {
            if let Some(stamps) = self.out_stamps.get(&msg.txn) {
                msg.versions = Some(stamps.clone());
            }
        }
        self.protocol_messages += 1;
        if self.flight.is_some() {
            let tag = ptp_simnet::Payload::kind(&msg.inner);
            self.flight_log("send", tag, msg.txn.0 as u64, dst.0 as u64);
        }
        if self.batch.enabled {
            self.outbuf[dst.index()].push(msg);
        } else {
            self.channel_sends += 1;
            let _ = self.router.send(Outbound { src: self.me, dst, msg: Packet(vec![msg]) });
        }
    }

    fn flush_outbufs(&mut self) {
        for dst in 0..self.n {
            if !self.outbuf[dst].is_empty() {
                let msgs = std::mem::take(&mut self.outbuf[dst]);
                self.channel_sends += 1;
                let _ = self.router.send(Outbound {
                    src: self.me,
                    dst: SiteId(dst as u16),
                    msg: Packet(msgs),
                });
            }
        }
    }

    /// The group-commit window: flush the WAL once (making every record
    /// appended since the last window durable), finalize the commits that
    /// flush covered, then drain the coalescing buffers — in that order, so
    /// nothing leaves the site ahead of its log records.
    fn window_tick(&mut self) {
        if self.wal.unflushed() > 0 {
            self.spin_flush();
        }
        for pf in std::mem::take(&mut self.pending) {
            match pf {
                PendingFinal::Decide(txn) => {
                    self.storage.apply(txn);
                    self.wal.append(Record::Applied { txn });
                    self.pending_set.remove(&txn);
                    self.complete_commit(txn);
                }
                PendingFinal::Apply(txn) => {
                    self.storage.apply(txn);
                    self.wal.append(Record::Applied { txn });
                    self.pending_set.remove(&txn);
                    self.finished.insert(txn, Decision::Commit);
                    self.release_and_unpark(txn);
                }
            }
        }
        self.flush_outbufs();
    }

    // ---- per-key write versions ----

    /// Is this site the version authority for `key` (its shard's master)?
    fn is_authority(&self, key: &Key) -> bool {
        let topo = &self.plans.topology;
        topo.master(topo.shard_of(key)) == self.me
    }

    /// Assigns/adopts per-key versions at commit time, *before* the commit
    /// record is appended, so every later outgoing message (and the
    /// deferred group-commit apply) sees them. Authority keys get the next
    /// version (the lock table serializes commits per key, so assignment
    /// order is commit order); stamped keys adopt the master's version;
    /// unstamped non-authority keys (termination-protocol decisions carry
    /// no stamp) fall back to a local bump.
    fn assign_versions(&mut self, txn: TxnId) {
        let writes: Vec<WriteOp> =
            self.storage.staged_writes(txn).map(|ws| ws.to_vec()).unwrap_or_default();
        let stamps_in = self.in_stamps.remove(&txn);
        let mut assigned = Vec::new();
        for w in &writes {
            let authority = self.is_authority(&w.key);
            let stamped = stamps_in
                .as_deref()
                .and_then(|s| s.iter().find(|(k, _)| k == &w.key))
                .map(|(_, v)| *v);
            let cur = self.key_version.entry(w.key.clone()).or_insert(0);
            if authority {
                *cur += 1;
                assigned.push((w.key.clone(), *cur));
            } else if let Some(v) = stamped {
                *cur = (*cur).max(v);
            } else {
                *cur += 1;
            }
        }
        if !assigned.is_empty() {
            self.out_stamps.insert(txn, assigned);
        }
    }

    // ---- protocol plumbing (mirrors ShardNode) ----

    fn apply_actions(&mut self, txn: TxnId, mut actions: Vec<Action>) {
        let plans = self.plans.clone();
        let Some(plan) = plans.get(txn) else { return };
        let my_v = plan.virtual_of(self.me);
        // Decisions first: a commit assigns this site's version stamps, and
        // the sends emitted by the same action batch must carry them.
        // (Sends are concurrent messages either way; timers of a finished
        // transaction fire as no-ops.)
        actions.sort_by_key(|a| !matches!(a, Action::Decide(_)));
        let mut dispatched = 0u32;
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let dst = plan.group[to.index()];
                    let writes = self.xact_writes_for(plan, &msg, dst, my_v);
                    self.send_wire(dst, WireMsg { txn, inner: msg, writes, versions: None });
                    dispatched += 1;
                }
                Action::Broadcast { msg } => {
                    for (v, &dst) in plan.group.iter().enumerate() {
                        if Some(v) != my_v {
                            let writes = self.xact_writes_for(plan, &msg, dst, my_v);
                            self.send_wire(
                                dst,
                                WireMsg { txn, inner: msg, writes, versions: None },
                            );
                            dispatched += 1;
                        }
                    }
                }
                Action::SetTimer { t_units, tag } => {
                    self.generation += 1;
                    let deadline = Instant::now() + self.t * t_units as u32;
                    self.timers.insert((txn, tag), (deadline, self.generation));
                }
                Action::CancelTimer { tag } => {
                    self.timers.remove(&(txn, tag));
                }
                Action::Decide(decision) => self.finish(txn, decision),
                Action::Note(..) => {}
            }
        }
        // Protocol messages this participant dispatched for the
        // transaction: the round count its span reports.
        if dispatched > 0 && self.obs.spans {
            if let Some(s) = self.spans.get_mut(&txn) {
                s.rounds += dispatched;
            }
        }
    }

    fn xact_writes_for(
        &self,
        plan: &ptp_shard::plan::TxnPlan,
        msg: &CommitMsg,
        dst: SiteId,
        my_v: Option<usize>,
    ) -> Option<Vec<WriteOp>> {
        if my_v != Some(0) || !matches!(msg, CommitMsg::Kind("xact")) {
            return None;
        }
        plan.writes.get(&dst.0).cloned()
    }

    fn cancel_timers_of(&mut self, txn: TxnId) {
        self.timers.retain(|(t, _), _| *t != txn);
    }

    fn ack_if_master(&mut self, txn: TxnId, decision: Decision) {
        // Every site drops its span here (group slaves stamp spans they
        // never ack; only the master's rides the completion).
        let span = self.spans.remove(&txn);
        let plans = self.plans.clone();
        if plans.get(txn).is_some_and(|p| p.master() == self.me) {
            let _ = self.completions.send(Completion {
                txn,
                decision,
                value: None,
                at: Instant::now(),
                span,
            });
        }
    }

    fn ship(&mut self, txn: TxnId, decision: Decision) {
        let plans = self.plans.clone();
        let Some(plan) = plans.get(txn) else { return };
        let Some(targets) = plan.ships.get(&self.me.0) else { return };
        for &replica in targets {
            let (kind, writes) = match decision {
                Decision::Commit => (SHARD_APPLY, plan.replica_writes.get(&replica.0).cloned()),
                Decision::Abort => (SHARD_ABORT, None),
            };
            self.send_wire(
                replica,
                WireMsg { txn, inner: CommitMsg::Kind(kind), writes, versions: None },
            );
        }
    }

    fn release_and_unpark(&mut self, txn: TxnId) {
        let promoted = self.locks.release_all(txn);
        for t in promoted {
            self.try_unpark(t);
        }
    }

    /// The post-durability tail of a local commit: record it, ack the
    /// client (if this site is the plan's master), ship to out-of-group
    /// replicas, free the locks.
    fn complete_commit(&mut self, txn: TxnId) {
        self.finished.insert(txn, Decision::Commit);
        self.ack_if_master(txn, Decision::Commit);
        self.ship(txn, Decision::Commit);
        self.release_and_unpark(txn);
    }

    /// Commits a transaction this site's participant decided (or a sole
    /// voter completed): durable now when batching is off, at the next
    /// window flush when it is on.
    fn commit_locally(&mut self, txn: TxnId) {
        if self.obs.spans {
            self.span_mark_decided(txn);
        }
        self.flight_log("decide", "commit", txn.0 as u64, 0);
        self.assign_versions(txn);
        if self.batch.enabled {
            self.wal.append(Record::Commit { txn });
            self.pending_set.insert(txn);
            self.pending.push(PendingFinal::Decide(txn));
            // Locks stay held and the ack waits for the window flush.
        } else {
            self.force(Record::Commit { txn });
            self.storage.apply(txn);
            self.force(Record::Applied { txn });
            self.complete_commit(txn);
        }
    }

    fn abort_locally(&mut self, txn: TxnId) {
        if self.obs.spans {
            self.span_mark_decided(txn);
        }
        self.flight_log("decide", "abort", txn.0 as u64, 0);
        self.in_stamps.remove(&txn);
        // Presumed abort: the record needs no force write before the ack.
        if self.batch.enabled {
            self.wal.append(Record::Abort { txn });
        } else {
            self.force(Record::Abort { txn });
        }
        self.storage.discard(txn);
        self.finished.insert(txn, Decision::Abort);
        self.ack_if_master(txn, Decision::Abort);
        self.ship(txn, Decision::Abort);
        self.release_and_unpark(txn);
    }

    /// Terminates a protocol transaction: releases its machine and timers,
    /// then runs the decision through the WAL discipline.
    fn finish(&mut self, txn: TxnId, decision: Decision) {
        let Some(slot) = self.slots.remove(&txn) else { return };
        self.cancel_timers_of(txn);
        self.pools.get_mut(&slot.pool).expect("slot pool exists").release(slot.participant);
        match decision {
            Decision::Commit => self.commit_locally(txn),
            Decision::Abort => self.abort_locally(txn),
        }
    }

    fn try_unpark(&mut self, txn: TxnId) {
        let Some(parked) = self.parked.remove(&txn) else { return };
        let all_held = match &parked {
            Parked::Xact { writes, .. } | Parked::Apply { writes, .. } => {
                writes.iter().all(|w| self.locks.holds(txn, &w.key, LockMode::Exclusive))
            }
            Parked::Read { key } => self.locks.holds(txn, key, LockMode::Shared),
        };
        if !all_held {
            self.parked.insert(txn, parked);
            return;
        }
        match parked {
            Parked::Xact { from, writes } => self.begin_local(txn, from, writes),
            Parked::Apply { writes, versions } => self.do_apply(txn, writes, versions),
            Parked::Read { key } => {
                self.reads_local += 1;
                if self.obs.spans {
                    self.span_mark_locked(txn, Instant::now());
                }
                self.flight_log("lock", "grant", txn.0 as u64, 1);
                self.serve_read(txn, &key);
                self.finished.insert(txn, Decision::Commit);
                self.release_and_unpark(txn);
            }
        }
    }

    /// Locks held: log + stage the writes and start the commit protocol
    /// (or commit on the spot for a sole-member group).
    fn begin_local(&mut self, txn: TxnId, from: SiteId, writes: Vec<WriteOp>) {
        if self.obs.spans {
            self.span_mark_locked(txn, Instant::now());
        }
        self.flight_log("lock", "grant", txn.0 as u64, writes.len() as u64);
        self.wal.append(Record::Begin { txn, writes: writes.clone() });
        if !self.batch.enabled {
            self.spin_flush();
        }
        self.storage.stage(txn, writes);

        let plans = self.plans.clone();
        let plan = plans.get(txn).expect("admitted transactions are planned");
        let k = plan.group.len();
        let my_v = plan.virtual_of(self.me).expect("participants are group members");

        if k == 1 {
            self.commit_locally(txn);
            return;
        }

        let pool_key = (my_v as u16, k as u16);
        let factory = self.factory.clone();
        let pool =
            self.pools.entry(pool_key).or_insert_with(|| factory.pool(SiteId(my_v as u16), k));
        let slot = pool.acquire(Vote::Yes);
        let mut out = Vec::new();
        let participant = pool.get_mut(slot);
        participant.start(&mut out);
        if my_v != 0 {
            let from_v = plan.virtual_of(from).unwrap_or(0);
            participant.on_msg(SiteId(from_v as u16), &CommitMsg::Kind("xact"), &mut out);
        }
        self.slots.insert(txn, TxnSlot { pool: pool_key, participant: slot });
        self.apply_actions(txn, out);
    }

    fn guard_duplicate(&self, txn: TxnId) -> bool {
        self.finished.contains_key(&txn)
            || self.slots.contains_key(&txn)
            || self.parked.contains_key(&txn)
            || self.pending_set.contains(&txn)
    }

    fn admit_xact(&mut self, txn: TxnId, from: SiteId, writes: Vec<WriteOp>) {
        if self.guard_duplicate(txn) || self.plans.get(txn).is_none() {
            return;
        }
        if self.obs.spans {
            let path = self.plans.get(txn).expect("checked above").path_tag();
            self.spans.insert(txn, TxnSpan::begin(path, Instant::now()));
        }
        let mut all = true;
        for w in &writes {
            if self.locks.acquire(txn, w.key.clone(), LockMode::Exclusive) == LockGrant::Waiting {
                all = false;
            }
        }
        if all {
            self.begin_local(txn, from, writes);
        } else {
            self.flight_log("lock", "park", txn.0 as u64, writes.len() as u64);
            self.parked.insert(txn, Parked::Xact { from, writes });
        }
    }

    fn admit_apply(&mut self, txn: TxnId, writes: Vec<WriteOp>, versions: Option<Vec<(Key, u64)>>) {
        if self.guard_duplicate(txn) {
            return;
        }
        let mut all = true;
        for w in &writes {
            if self.locks.acquire(txn, w.key.clone(), LockMode::Exclusive) == LockGrant::Waiting {
                all = false;
            }
        }
        if all {
            self.do_apply(txn, writes, versions);
        } else {
            self.parked.insert(txn, Parked::Apply { writes, versions });
        }
    }

    /// Installs a shipped cross-shard commit under the full WAL discipline.
    fn do_apply(&mut self, txn: TxnId, writes: Vec<WriteOp>, versions: Option<Vec<(Key, u64)>>) {
        // Stale-ship filter, under this transaction's held locks: a ship
        // that raced a newer committed write through the router installs
        // nothing for the keys it lost (the commit record still lands —
        // the *decision* is not stale, only the value).
        let mut keep = Vec::with_capacity(writes.len());
        for w in writes {
            let stamped = versions
                .as_deref()
                .and_then(|s| s.iter().find(|(k, _)| k == &w.key))
                .map(|(_, v)| *v);
            let cur = self.key_version.entry(w.key.clone()).or_insert(0);
            match stamped {
                Some(v) if v <= *cur => {}
                Some(v) => {
                    *cur = v;
                    keep.push(w);
                }
                None => {
                    *cur += 1;
                    keep.push(w);
                }
            }
        }
        let writes = keep;
        self.wal.append(Record::Begin { txn, writes: writes.clone() });
        if self.batch.enabled {
            self.storage.stage(txn, writes);
            self.wal.append(Record::Commit { txn });
            self.pending_set.insert(txn);
            self.pending.push(PendingFinal::Apply(txn));
        } else {
            self.spin_flush();
            self.storage.stage(txn, writes);
            self.force(Record::Commit { txn });
            self.storage.apply(txn);
            self.force(Record::Applied { txn });
            self.finished.insert(txn, Decision::Commit);
            self.release_and_unpark(txn);
        }
    }

    fn admit_abort_ship(&mut self, txn: TxnId) {
        if self.guard_duplicate(txn) {
            return;
        }
        self.finished.insert(txn, Decision::Abort);
    }

    // ---- the elastic read path ----

    /// Answers a client read from committed storage.
    fn serve_read(&mut self, txn: TxnId, key: &Key) {
        let span = self.spans.remove(&txn);
        let value = self.storage.get(key).cloned();
        let _ = self.completions.send(Completion {
            txn,
            decision: Decision::Commit,
            value,
            at: Instant::now(),
            span,
        });
    }

    /// Is this site's lease over `shard` live right now? True only at the
    /// shard's master, and only while *every* replica's grant covers the
    /// present instant (an empty replica set is trivially covered,
    /// mirroring `ptp_shard::LeaseTable`).
    fn lease_valid(&self, shard: usize, now: Instant) -> bool {
        let topo = &self.plans.topology;
        topo.master(shard) == self.me
            && topo.group(shard)[1..]
                .iter()
                .all(|r| self.lease_grants.get(&(shard, r.0)).is_some_and(|exp| *exp >= now))
    }

    /// A client read: lease fast path when the shard lease is live and the
    /// key unlocked (no in-flight commit round), otherwise the shared-lock
    /// path — granted reads serve immediately, conflicting ones park until
    /// the exclusive holder finishes.
    fn admit_read(&mut self, txn: TxnId, key: Key) {
        if self.guard_duplicate(txn) {
            return;
        }
        let now = Instant::now();
        let shard = self.plans.topology.shard_of(&key);
        if self.lease.is_some() && self.lease_valid(shard, now) && !self.locks.is_locked(&key) {
            self.reads_lease += 1;
            if self.obs.spans {
                self.spans.insert(txn, TxnSpan::begin("read-lease", now));
            }
            self.serve_read(txn, &key);
            self.finished.insert(txn, Decision::Commit);
            return;
        }
        if self.lease.is_some() && self.plans.topology.master(shard) == self.me {
            // The fast path was configured but unavailable: lapsed grant
            // (partition/crash/delay) or an in-flight commit on the key.
            self.flight_log("lease", "lapse", shard as u64, txn.0 as u64);
        }
        if self.locks.acquire(txn, key.clone(), LockMode::Shared) == LockGrant::Granted {
            self.reads_local += 1;
            if self.obs.spans {
                let mut span = TxnSpan::begin("read-local", now);
                span.locked = Some(now);
                self.spans.insert(txn, span);
            }
            self.serve_read(txn, &key);
            self.finished.insert(txn, Decision::Commit);
            self.release_and_unpark(txn);
        } else {
            if self.obs.spans {
                self.spans.insert(txn, TxnSpan::begin("read-parked", now));
            }
            self.flight_log("lock", "park", txn.0 as u64, 1);
            self.parked.insert(txn, Parked::Read { key });
        }
    }

    // ---- wall-clock lease + anti-entropy chains ----

    /// One renewal round: each shard this site masters gets a fresh round
    /// id, and every group replica a `LEASE_RENEW`. Acks of superseded
    /// rounds are discarded, so grants anchor at the instant recorded here.
    fn lease_tick(&mut self, now: Instant) {
        let plans = self.plans.clone();
        let topo = &plans.topology;
        self.lease_round_seq = self.lease_round_seq.wrapping_add(1);
        let round = self.lease_round_seq;
        if let Some(cfg) = self.lease {
            self.lease_rounds.retain(|_, sent| *sent + cfg.duration >= now);
        }
        for shard in 0..topo.shards() {
            let group = topo.group(shard);
            if group[0] != self.me || group.len() == 1 {
                continue;
            }
            self.lease_rounds.insert((shard, round), now);
            for &replica in &group[1..] {
                self.send_wire(
                    replica,
                    WireMsg {
                        txn: TxnId(LEASE_CTRL_BASE | (round as u32) << 8 | shard as u32),
                        inner: CommitMsg::Kind(LEASE_RENEW),
                        writes: None,
                        versions: None,
                    },
                );
            }
        }
    }

    /// An ack from `src`: arm its grant, anchored at the acked round's
    /// send instant. Grants only move forward — a reordered older ack must
    /// not shorten a grant a newer ack already armed.
    fn lease_ack(&mut self, src: SiteId, txn: TxnId) {
        let (round, shard) = (((txn.0 >> 8) & 0xFF) as u8, (txn.0 & 0xFF) as usize);
        let Some(cfg) = self.lease else { return };
        if let Some(&sent) = self.lease_rounds.get(&(shard, round)) {
            let expiry = sent + cfg.duration;
            let slot = self.lease_grants.entry((shard, src.0)).or_insert(expiry);
            *slot = (*slot).max(expiry);
            self.flight_log("lease", "grant", shard as u64, src.0 as u64);
        }
    }

    /// One anti-entropy round: for every shard this site replicates (but
    /// does not master), poll the master with this site's version vector
    /// for the shard's keys. A partitioned request bounces; a converged
    /// master answers with silence.
    fn sync_tick(&mut self) {
        let plans = self.plans.clone();
        let topo = &plans.topology;
        for shard in 0..topo.shards() {
            let group = topo.group(shard);
            if group[0] == self.me || !group.contains(&self.me) {
                continue;
            }
            let versions: Vec<(Key, u64)> = self
                .key_version
                .iter()
                .filter(|(k, _)| topo.shard_of(k) == shard)
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            self.send_wire(
                group[0],
                WireMsg {
                    txn: TxnId(SYNC_CTRL_BASE | shard as u32),
                    inner: CommitMsg::Kind(SYNC_REQ),
                    writes: None,
                    versions: Some(versions),
                },
            );
        }
    }

    /// The master's side: answer `src`'s version vector with the committed
    /// values it is missing, stamped with their current versions — or with
    /// nothing at all once the replica has caught up. Keys under an
    /// exclusive lock are skipped: their version was assigned but the
    /// commit has not applied yet, so value and stamp would disagree (the
    /// next round picks them up).
    fn handle_sync_req(&mut self, src: SiteId, txn: TxnId, versions: Option<Vec<(Key, u64)>>) {
        let shard = (txn.0 & 0xFFFF) as usize;
        let plans = self.plans.clone();
        let topo = &plans.topology;
        if topo.master(shard) != self.me {
            return;
        }
        let theirs: HashMap<&Key, u64> =
            versions.as_deref().unwrap_or(&[]).iter().map(|(k, v)| (k, *v)).collect();
        let mut delta = Vec::new();
        let mut stamps = Vec::new();
        for (key, &version) in &self.key_version {
            if topo.shard_of(key) != shard
                || version <= theirs.get(key).copied().unwrap_or(0)
                || self.locks.is_locked(key)
            {
                continue;
            }
            if let Some(value) = self.storage.get(key) {
                delta.push(WriteOp { key: key.clone(), value: value.clone() });
                stamps.push((key.clone(), version));
            }
        }
        if delta.is_empty() {
            return; // post-convergence silence
        }
        self.send_wire(
            src,
            WireMsg {
                txn,
                inner: CommitMsg::Kind(SYNC_RESP),
                writes: Some(delta),
                versions: Some(stamps),
            },
        );
    }

    /// The replica's side: install the delta under a fresh synthetic
    /// transaction id, through the ordinary apply discipline — locks, WAL,
    /// and the stale-ship version filter (a delta that lost a race to a
    /// newer ship installs nothing for the keys it lost).
    fn handle_sync_resp(&mut self, writes: Vec<WriteOp>, versions: Option<Vec<(Key, u64)>>) {
        let txn = TxnId(SYNC_APPLY_BASE + self.sync_seq);
        self.sync_seq += 1;
        self.sync_installs += 1;
        self.flight_log("sync", "install", txn.0 as u64, writes.len() as u64);
        self.admit_apply(txn, writes, versions);
    }

    // ---- inbound dispatch ----

    fn handle(&mut self, src: SiteId, wire: WireMsg) {
        let WireMsg { txn, inner, writes, versions } = wire;
        if self.flight.is_some() {
            let tag = ptp_simnet::Payload::kind(&inner);
            self.flight_log("recv", tag, txn.0 as u64, src.0 as u64);
        }
        match inner {
            CommitMsg::Kind(CLIENT_XACT) => {
                let local = self
                    .plans
                    .get(txn)
                    .and_then(|p| p.writes.get(&self.me.0).cloned())
                    .unwrap_or_default();
                self.admit_xact(txn, self.me, local);
                return;
            }
            CommitMsg::Kind(CLIENT_READ) => {
                if let Some(w) = writes.as_deref().and_then(|ws| ws.first()) {
                    self.admit_read(txn, w.key.clone());
                }
                return;
            }
            CommitMsg::Kind(LEASE_RENEW) => {
                // Echo the round back; the master anchors the grant at its
                // own send instant.
                self.send_wire(
                    src,
                    WireMsg {
                        txn,
                        inner: CommitMsg::Kind(LEASE_ACK),
                        writes: None,
                        versions: None,
                    },
                );
                return;
            }
            CommitMsg::Kind(LEASE_ACK) => {
                self.lease_ack(src, txn);
                return;
            }
            CommitMsg::Kind(SYNC_REQ) => {
                self.handle_sync_req(src, txn, versions);
                return;
            }
            CommitMsg::Kind(SYNC_RESP) => {
                self.handle_sync_resp(writes.unwrap_or_default(), versions);
                return;
            }
            CommitMsg::Kind("xact") => {
                self.admit_xact(txn, src, writes.unwrap_or_default());
                return;
            }
            CommitMsg::Kind(SHARD_APPLY) => {
                self.admit_apply(txn, writes.unwrap_or_default(), versions);
                return;
            }
            CommitMsg::Kind(SHARD_ABORT) => {
                self.admit_abort_ship(txn);
                return;
            }
            _ => {}
        }
        // A protocol message of an undecided transaction may carry the
        // master's version stamps; keep the latest for our own commit.
        if let Some(vs) = versions {
            if !self.finished.contains_key(&txn) && !self.pending_set.contains(&txn) {
                self.in_stamps.insert(txn, vs);
            }
        }
        if let Some(slot) = self.slots.get(&txn) {
            let (pool_key, participant) = (slot.pool, slot.participant);
            let plans = self.plans.clone();
            let Some(from_v) = plans.get(txn).and_then(|p| p.virtual_of(src)) else {
                return;
            };
            let mut out = Vec::new();
            self.pools.get_mut(&pool_key).expect("slot pool exists").get_mut(participant).on_msg(
                SiteId(from_v as u16),
                &inner,
                &mut out,
            );
            self.apply_actions(txn, out);
        } else if self.parked.contains_key(&txn) {
            // An abort can reach a transaction still waiting on locks (the
            // master gave up on us); see ShardNode for why only aborts can.
            if matches!(inner, CommitMsg::Kind("abort"))
                && matches!(self.parked.get(&txn), Some(Parked::Xact { .. }))
            {
                self.parked.remove(&txn);
                self.spans.remove(&txn);
                self.finished.insert(txn, Decision::Abort);
                self.release_and_unpark(txn);
            }
        }
    }

    fn handle_ud(&mut self, original_dst: SiteId, wire: WireMsg) {
        let WireMsg { txn, inner, .. } = wire;
        if let Some(slot) = self.slots.get(&txn) {
            let (pool_key, participant) = (slot.pool, slot.participant);
            let plans = self.plans.clone();
            let Some(dst_v) = plans.get(txn).and_then(|p| p.virtual_of(original_dst)) else {
                return; // a bounced ship has no participant to tell
            };
            let mut out = Vec::new();
            self.pools.get_mut(&pool_key).expect("slot pool exists").get_mut(participant).on_ud(
                SiteId(dst_v as u16),
                &inner,
                &mut out,
            );
            self.apply_actions(txn, out);
        }
    }

    fn fire_due_timers(&mut self, now: Instant) {
        let due: Vec<(TxnId, TimerTag, u64)> = self
            .timers
            .iter()
            .filter(|(_, (deadline, _))| *deadline <= now)
            .map(|((txn, tag), (_, generation))| (*txn, *tag, *generation))
            .collect();
        for (txn, tag, generation) in due {
            if self.timers.get(&(txn, tag)).is_some_and(|(_, g)| *g == generation) {
                self.timers.remove(&(txn, tag));
                if self.crashed {
                    continue; // due-while-down timers are discarded unfired
                }
                if let Some(slot) = self.slots.get(&txn) {
                    let (pool_key, participant) = (slot.pool, slot.participant);
                    let mut out = Vec::new();
                    self.pools
                        .get_mut(&pool_key)
                        .expect("slot pool exists")
                        .get_mut(participant)
                        .on_timer(tag, &mut out);
                    self.apply_actions(txn, out);
                }
            }
        }
    }

    /// Crash: go silent. Volatile state is wiped on recovery (mirroring the
    /// simulator, where `on_recover` performs the Sec. 2 discipline).
    fn crash(&mut self) {
        self.flight_log("fault", "crash", 0, 0);
        self.crashed = true;
    }

    fn recover(&mut self) {
        self.flight_log("fault", "recover", 0, 0);
        // In-flight spans died with the volatile state.
        self.spans.clear();
        for (_, slot) in std::mem::take(&mut self.slots) {
            self.pools.get_mut(&slot.pool).expect("slot pool exists").release(slot.participant);
        }
        self.parked.clear();
        self.pending.clear();
        self.pending_set.clear();
        self.in_stamps.clear();
        self.timers.clear();
        // Grants are volatile: a recovering master re-earns its lease
        // through fresh renewal rounds before fast-path reads resume.
        self.lease_grants.clear();
        self.lease_rounds.clear();
        for buf in &mut self.outbuf {
            buf.clear();
        }
        self.locks = LockTable::new();
        self.storage.crash();
        self.wal.crash();
        let summary = ptp_ddb::recovery::recover(&mut self.storage, &mut self.wal);
        for txn in &summary.redone {
            self.finished.insert(*txn, Decision::Commit);
        }
        for txn in &summary.discarded {
            self.finished.insert(*txn, Decision::Abort);
        }
        self.crashed = false;
    }

    /// Runs until `Shutdown` (or every sender hangs up). Returns the
    /// shutdown report after one final window flush, so in-flight group
    /// commits that already decided are finalized rather than stranded.
    pub fn run(mut self, inbox: Receiver<Inbound<Packet>>) -> NodeReport {
        let mut next_tick = Instant::now() + self.batch.window;
        // Periodic chains fire from the start: the first renewal round goes
        // out immediately so grants arm before the first reads arrive.
        let mut next_lease = self.lease.map(|_| Instant::now());
        let mut next_sync = self.anti_entropy.map(|p| Instant::now() + p);
        loop {
            let now = Instant::now();
            self.fire_due_timers(now);
            if self.batch.enabled && now >= next_tick {
                if !self.crashed {
                    self.window_tick();
                }
                next_tick = now + self.batch.window;
            }
            if let (Some(cfg), Some(due)) = (self.lease, next_lease) {
                if now >= due {
                    if !self.crashed {
                        self.lease_tick(now);
                    }
                    next_lease = Some(now + cfg.period);
                }
            }
            if let (Some(period), Some(due)) = (self.anti_entropy, next_sync) {
                if now >= due {
                    if !self.crashed {
                        self.sync_tick();
                    }
                    next_sync = Some(now + period);
                }
            }

            let mut wait = self
                .timers
                .values()
                .map(|(deadline, _)| *deadline)
                .min()
                .map(|d| d.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(20));
            if self.batch.enabled {
                wait = wait.min(next_tick.saturating_duration_since(now));
            }
            for due in [next_lease, next_sync].into_iter().flatten() {
                wait = wait.min(due.saturating_duration_since(now));
            }

            match inbox.recv_timeout(wait) {
                Ok(Inbound::Deliver { src, msg }) => {
                    if !self.crashed {
                        for m in msg.0 {
                            self.handle(src, m);
                        }
                    }
                }
                Ok(Inbound::Undeliverable { original_dst, msg }) => {
                    if !self.crashed {
                        for m in msg.0 {
                            self.handle_ud(original_dst, m);
                        }
                    }
                }
                Ok(Inbound::Crash) => self.crash(),
                Ok(Inbound::Recover) => self.recover(),
                Ok(Inbound::Shutdown) => break,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if self.batch.enabled && !self.crashed {
            self.window_tick();
        }
        let in_flight = self.slots.len() + self.parked.len() + self.pending.len();
        NodeReport {
            site: self.me,
            storage: self.storage,
            wal: self.wal,
            finished: self.finished,
            in_flight_at_shutdown: in_flight,
            flushes: self.flushes,
            channel_sends: self.channel_sends,
            protocol_messages: self.protocol_messages,
            reads_lease: self.reads_lease,
            reads_local: self.reads_local,
            sync_installs: self.sync_installs,
            flight: self.flight,
        }
    }
}
