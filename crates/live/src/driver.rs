//! The open-loop client driver: a precomputed wall-clock arrival schedule,
//! injected on time *regardless of completions*.
//!
//! Open-loop load generation is what makes the latency record honest: a
//! closed-loop driver (issue, wait, issue) slows down exactly when the
//! system does, hiding queueing delay — the coordinated-omission trap. Here
//! every operation has a scheduled arrival instant fixed before the run
//! starts; if the driver thread falls behind the schedule it catches up by
//! injecting immediately (never skipping), and latency is measured from the
//! *scheduled* arrival, so delay the client would have observed is charged
//! to the system.

use crate::config::{KeySkew, LiveOptions};
use crate::node::{Packet, WireMsg, CLIENT_READ, CLIENT_XACT, READ_BASE};
use ptp_ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_livenet::Inbound;
use ptp_protocols::api::CommitMsg;
use ptp_shard::plan::ShardTxnSpec;
use ptp_shard::ShardTopology;
use ptp_simnet::rng::SmallRng;
use ptp_simnet::SiteId;
use std::sync::mpsc::Sender;
use std::time::{Duration, Instant};

/// What one scheduled operation does.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// A planned write transaction (the spec lives in the plan table).
    Write,
    /// A point read of one key, served by its shard master.
    Read(Key),
}

/// One operation of the open-loop schedule.
#[derive(Debug, Clone)]
pub struct ScheduledOp {
    /// Scheduled arrival, relative to run start. Latency is measured from
    /// here.
    pub at: Duration,
    /// The operation id (write plan id, or `READ_BASE + i` for reads).
    pub txn: TxnId,
    /// Write or read.
    pub kind: OpKind,
    /// The site the client talks to (the plan's master / the key's shard
    /// master).
    pub target: SiteId,
}

/// The full precomputed workload: the arrival schedule plus the write
/// transaction specs the plan table compiles.
#[derive(Debug)]
pub struct Schedule {
    /// Operations in arrival order.
    pub ops: Vec<ScheduledOp>,
    /// Write specs, one per `OpKind::Write` op.
    pub specs: Vec<ShardTxnSpec>,
    /// Number of writes in `ops`.
    pub writes: usize,
    /// Number of reads in `ops`.
    pub reads: usize,
}

fn uniform01(rng: &mut SmallRng) -> f64 {
    // 53 random bits → [0, 1): the standard double construction.
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

fn pick_key(rng: &mut SmallRng, skew: KeySkew, pool: &[Key]) -> Key {
    let hot = matches!(skew, KeySkew::HotKey { hot_fraction } if uniform01(rng) < hot_fraction);
    if hot {
        pool[0].clone()
    } else {
        pool[(rng.next_u64() % pool.len() as u64) as usize].clone()
    }
}

/// Generates the open-loop schedule: exponential inter-arrivals at
/// `offered_rate` over `duration`, reads/writes mixed per `read_fraction`,
/// keys per `skew`, a `cross_shard_fraction` of writes spanning two shards
/// (one key in each).
///
/// Every write touches exactly **one key per involved shard**. That keeps
/// each site's lock acquisition single-key, so a parked transaction never
/// holds locks while waiting — local waits-for graphs cannot cycle, and
/// cross-site waits are broken by the master's protocol timeout (the same
/// discipline `ptp-shard` relies on).
pub fn generate(opts: &LiveOptions, topo: &ShardTopology, pools: &[Vec<Key>]) -> Schedule {
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut ops = Vec::new();
    let mut specs = Vec::new();
    let mut at = Duration::ZERO;
    let mut next_write = 1u32;
    let mut next_read = READ_BASE;
    let shards = topo.shards();

    loop {
        // Exponential inter-arrival: -ln(1 - U) / rate.
        let u = uniform01(&mut rng);
        at += Duration::from_secs_f64((-(1.0 - u).ln()) / opts.offered_rate);
        if at >= opts.duration {
            break;
        }
        if uniform01(&mut rng) < opts.read_fraction {
            let shard = (rng.next_u64() % shards as u64) as usize;
            let key = pick_key(&mut rng, opts.skew, &pools[shard]);
            ops.push(ScheduledOp {
                at,
                txn: TxnId(next_read),
                kind: OpKind::Read(key),
                target: topo.master(shard),
            });
            next_read += 1;
        } else {
            let first = (rng.next_u64() % shards as u64) as usize;
            let mut involved = vec![first];
            if shards > 1 && uniform01(&mut rng) < opts.cross_shard_fraction {
                let mut second = (rng.next_u64() % (shards as u64 - 1)) as usize;
                if second >= first {
                    second += 1;
                }
                involved.push(second);
            }
            let txn = TxnId(next_write);
            next_write += 1;
            let writes: Vec<WriteOp> = involved
                .iter()
                .map(|&s| WriteOp {
                    key: pick_key(&mut rng, opts.skew, &pools[s]),
                    value: Value::from_u64(txn.0 as u64),
                })
                .collect();
            let coordinator_shard = *involved.iter().min().expect("at least one shard");
            specs.push(ShardTxnSpec { id: txn, writes });
            ops.push(ScheduledOp {
                at,
                txn,
                kind: OpKind::Write,
                target: topo.master(coordinator_shard),
            });
        }
    }

    let writes = specs.len();
    let reads = ops.len() - writes;
    Schedule { ops, specs, writes, reads }
}

/// The driver thread body: sleeps until each op's scheduled arrival (or
/// injects immediately when behind — open loop, never skipping) and hands
/// it to the target site's mailbox. Client traffic goes straight to the
/// local site, not through the delayed router: the client *is* local to its
/// master.
pub fn run_driver(ops: Vec<ScheduledOp>, site_txs: Vec<Sender<Inbound<Packet>>>, start: Instant) {
    for op in ops {
        let due = start + op.at;
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            std::thread::sleep((due - now).min(Duration::from_millis(2)));
        }
        let wire = match op.kind {
            OpKind::Write => WireMsg {
                txn: op.txn,
                inner: CommitMsg::Kind(CLIENT_XACT),
                writes: None,
                versions: None,
            },
            OpKind::Read(key) => WireMsg {
                txn: op.txn,
                inner: CommitMsg::Kind(CLIENT_READ),
                writes: Some(vec![WriteOp { key, value: Value::from_u64(0) }]),
                versions: None,
            },
        };
        let _ = site_txs[op.target.index()]
            .send(Inbound::Deliver { src: op.target, msg: Packet(vec![wire]) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> LiveOptions {
        let mut o = LiveOptions::small(500.0, Duration::from_millis(400));
        o.cross_shard_fraction = 0.3;
        o
    }

    #[test]
    fn schedule_is_ordered_and_in_window() {
        let o = opts();
        let topo = ShardTopology::uniform(o.sites, o.shards, o.replication);
        let pools = topo.key_pool(o.keys_per_shard);
        let s = generate(&o, &topo, &pools);
        assert!(!s.ops.is_empty());
        assert_eq!(s.writes + s.reads, s.ops.len());
        assert_eq!(s.specs.len(), s.writes);
        for pair in s.ops.windows(2) {
            assert!(pair[0].at <= pair[1].at, "arrivals must be sorted");
        }
        assert!(s.ops.last().unwrap().at < o.duration);
    }

    #[test]
    fn offered_rate_is_roughly_met() {
        let o = opts();
        let topo = ShardTopology::uniform(o.sites, o.shards, o.replication);
        let pools = topo.key_pool(o.keys_per_shard);
        let s = generate(&o, &topo, &pools);
        let expected = o.offered_rate * o.duration.as_secs_f64();
        let got = s.ops.len() as f64;
        assert!(
            (expected * 0.6..=expected * 1.4).contains(&got),
            "expected ~{expected} arrivals, got {got}"
        );
    }

    #[test]
    fn writes_touch_one_key_per_shard_and_route_to_the_coordinator() {
        let o = opts();
        let topo = ShardTopology::uniform(o.sites, o.shards, o.replication);
        let pools = topo.key_pool(o.keys_per_shard);
        let s = generate(&o, &topo, &pools);
        let mut cross = 0;
        for spec in &s.specs {
            let mut shards: Vec<usize> =
                spec.writes.iter().map(|w| topo.shard_of(&w.key)).collect();
            shards.sort_unstable();
            let mut dedup = shards.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), shards.len(), "one key per involved shard");
            if shards.len() > 1 {
                cross += 1;
            }
            let op = s.ops.iter().find(|op| op.txn == spec.id).expect("every spec is scheduled");
            assert_eq!(op.target, topo.master(shards[0]), "client talks to the coordinator");
        }
        assert!(cross > 0, "some writes should span shards");
    }

    #[test]
    fn hot_key_skew_concentrates_traffic() {
        let mut o = opts();
        o.skew = KeySkew::HotKey { hot_fraction: 0.8 };
        o.read_fraction = 0.0;
        o.cross_shard_fraction = 0.0;
        let topo = ShardTopology::uniform(o.sites, o.shards, o.replication);
        let pools = topo.key_pool(o.keys_per_shard);
        let s = generate(&o, &topo, &pools);
        let hot: Vec<&Key> = pools.iter().map(|p| &p[0]).collect();
        let hot_hits =
            s.specs.iter().filter(|spec| hot.contains(&&spec.writes[0].key)).count() as f64;
        let frac = hot_hits / s.specs.len() as f64;
        assert!(frac > 0.6, "hot fraction {frac} too low for 0.8 skew");
    }

    #[test]
    fn read_mix_matches_configured_fraction() {
        let mut o = LiveOptions::small(2_000.0, Duration::from_millis(500));
        o.read_fraction = 0.3;
        let topo = ShardTopology::uniform(o.sites, o.shards, o.replication);
        let pools = topo.key_pool(o.keys_per_shard);
        let s = generate(&o, &topo, &pools);
        let fraction = s.reads as f64 / s.ops.len() as f64;
        assert!((0.25..=0.35).contains(&fraction), "read fraction {fraction} far from 0.3");
        // Every read targets its key's shard master — the site that serves
        // it (lease or shared-lock path), not a synthesized placeholder.
        for op in &s.ops {
            if let OpKind::Read(key) = &op.kind {
                assert_eq!(op.target, topo.master(topo.shard_of(key)));
            }
        }
    }

    #[test]
    fn read_ids_stay_in_their_namespace() {
        let o = opts();
        let topo = ShardTopology::uniform(o.sites, o.shards, o.replication);
        let pools = topo.key_pool(o.keys_per_shard);
        let s = generate(&o, &topo, &pools);
        for op in &s.ops {
            match op.kind {
                OpKind::Write => assert!(op.txn.0 < READ_BASE),
                OpKind::Read(_) => assert!(op.txn.0 >= READ_BASE),
            }
        }
    }
}
