//! A log-bucketed latency histogram (hdr-lite, hand-rolled — this workspace
//! builds offline, so no external histogram crate).
//!
//! Values are recorded in integer units (the live harness uses
//! microseconds). Buckets are exact for values `< 32`; above that, each
//! power-of-two octave is split into 16 sub-buckets, so the relative
//! quantile error is bounded by 1/16 ≈ 6.25% while the whole table stays a
//! few hundred `u64`s regardless of range. The true maximum is tracked
//! exactly.

/// Sub-buckets per octave: 2^5 = 32 exact low values, 16 per octave above.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS; // 16
const EXACT: u64 = SUB * 2; // values < 32 get their own bucket

/// A log-linear histogram of `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

fn bucket_of(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    // Octave o = position of the highest set bit; sub-index = the next
    // SUB_BITS bits below it. Values < 32 were handled above, so o >= 5.
    let o = 63 - v.leading_zeros();
    let sub = (v >> (o - SUB_BITS)) & (SUB - 1);
    EXACT as usize + (o - SUB_BITS - 1) as usize * SUB as usize + sub as usize
}

/// The (inclusive) upper edge of bucket `idx` — what quantile queries
/// report, so reported quantiles never understate the true sample.
fn bucket_upper(idx: usize) -> u64 {
    if (idx as u64) < EXACT {
        return idx as u64;
    }
    let rel = idx as u64 - EXACT;
    let o = rel / SUB + SUB_BITS as u64 + 1;
    let sub = rel % SUB;
    (1u64 << o) + (sub + 1) * (1u64 << (o - SUB_BITS as u64)) - 1
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_of(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact maximum sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound within one
    /// bucket (≤ 6.25% relative error), with `quantile(1.0)` the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's upper edge can overshoot the true max.
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (idx, &c) in other.buckets.iter().enumerate() {
            self.buckets[idx] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..EXACT {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9] {
            let want = (q * EXACT as f64).ceil() as u64 - 1;
            assert_eq!(h.quantile(q), want, "q={q}");
        }
    }

    #[test]
    fn bucket_upper_bounds_its_members() {
        // Every value maps to a bucket whose upper edge is >= it and within
        // 1/16 relative error.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3, v * 2 - 1] {
                let upper = bucket_upper(bucket_of(probe));
                assert!(upper >= probe, "upper {upper} < probe {probe}");
                assert!(
                    (upper - probe) as f64 <= probe as f64 / 16.0 + 1.0,
                    "probe {probe} upper {upper} overshoots"
                );
            }
            v *= 2;
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000);
        let p50 = h.quantile(0.5);
        assert!((4_700..=5_300).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((9_800..=10_000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 10_000);
        let mean = h.mean();
        assert!((4_900.0..=5_100.0).contains(&mean), "mean={mean}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in 0..1000u64 {
            let sample = v * 37 % 50_000;
            if v % 2 == 0 { &mut a } else { &mut b }.record(sample);
            all.record(sample);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
