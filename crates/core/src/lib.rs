//! # ptp-core — the public API of the Huang–Li 1987 reproduction
//!
//! A termination protocol makes a commit protocol live through network
//! partitions: when timeouts and returned messages reveal that the network
//! has split, every site must still terminate its transaction — consistently
//! with every other site, on both sides of the boundary. Huang & Li (ICDE
//! 1987) designed such a protocol for the three-phase commit protocol under
//! *optimistic simple partitioning* (undeliverable messages return to their
//! senders); this workspace reproduces the whole paper. See README.md for
//! the quickstart and ARCHITECTURE.md for the system inventory and the
//! experiment ↔ paper map.
//!
//! This crate is the front door:
//!
//! * [`Scenario`] describes a cluster and its network conditions;
//! * [`Session`] builds a protocol cluster **once** and executes any number
//!   of scenarios through it, reusing every buffer across runs;
//! * [`SessionPool`] keys sessions by `(kind, n)` so flows that interleave
//!   several protocols or cluster sizes share clusters the same way;
//! * [`RunOptions`] types the per-run choices (trace retention, injected
//!   failures, horizon) that used to be positional `bool`/`Vec` parameters;
//! * [`run_scenario`] / [`run_scenario_opts`] are the one-shot conveniences;
//! * [`sweep()`] grids over schedule shapes × boundaries × partition
//!   instants × heal instants × delay schedules and reports every atomicity
//!   violation or blocked site;
//! * [`PartitionSchedule`] generalizes the paper's single simple partition
//!   to ordered multi-episode, multi-group schedules, and
//!   [`ScheduleShape`] enumerates whole families of them in sweeps;
//! * [`cases`] classifies transient-partition runs into the paper's Sec. 6
//!   case tree and measures the per-case worst-case waits.
//!
//! ```
//! use ptp_core::{ProtocolKind, RunOptions, Scenario, Session};
//! use ptp_simnet::SiteId;
//!
//! // One session, many scenarios: the cluster, the simulator's event heap
//! // and the partition engine's buffers are all built once.
//! let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
//! for at in [500u64, 1500, 2500, 3500] {
//!     // Cut slave 2 off at tick `at` (2500 = prepares in flight).
//!     let scenario = Scenario::new(3).partition_g2(vec![SiteId(2)], at);
//!     let result = session.run(&scenario);
//!     assert!(result.verdict.is_resilient());
//! }
//!
//! // Need the full event trace? Say so in the options.
//! let result = session.run_with(
//!     &Scenario::new(3).partition_g2(vec![SiteId(2)], 2500),
//!     &RunOptions::recording(),
//! );
//! assert!(!result.trace.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cases;
pub mod read_audit;
pub mod report;
pub mod run;
pub mod scenario;
pub mod session;
pub mod sweep;
pub mod timeline;

pub use campaign::{Campaign, CampaignConfig, CampaignFailure, CampaignReport};
pub use read_audit::{ReadAuditFailure, ReadAuditReport, ReadWorkload};
pub use run::{run_scenario, run_scenario_opts, ScenarioResult};
pub use scenario::{PartitionEpisode, PartitionSchedule, PartitionShape, ProtocolKind, Scenario};
pub use session::{build_cluster_any, Session, SessionPool};
pub use sweep::{
    all_simple_boundaries, sweep, sweep_parallel, sweep_profiled, sweep_serial, sweep_threads,
    sweep_with_session, sweep_with_threads, ScenarioDesc, ScenarioSpec, ScheduleShape, SweepGrid,
    SweepReport,
};
pub use timeline::{DbFaults, ScenarioBuilder, TimedEvent, Timeline, TimelineEvent};

// The typed execution options, re-exported from `ptp-protocols` so most
// callers need only this crate.
pub use ptp_protocols::{RunOptions, TraceMode};

// Re-export the lower layers so examples and downstream users need only one
// dependency.
pub use ptp_ddb as ddb;
pub use ptp_livenet as livenet;
pub use ptp_model as model;
pub use ptp_protocols as protocols;
pub use ptp_simnet as simnet;
