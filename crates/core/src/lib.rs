//! # ptp-core — the public API of the Huang–Li 1987 reproduction
//!
//! A termination protocol makes a commit protocol live through network
//! partitions: when timeouts and returned messages reveal that the network
//! has split, every site must still terminate its transaction — consistently
//! with every other site, on both sides of the boundary. Huang & Li (ICDE
//! 1987) designed such a protocol for the three-phase commit protocol under
//! *optimistic simple partitioning* (undeliverable messages return to their
//! senders); this workspace reproduces the whole paper. See DESIGN.md for
//! the system inventory and EXPERIMENTS.md for paper-vs-measured results.
//!
//! This crate is the front door:
//!
//! * [`Scenario`] describes a cluster and its network conditions;
//! * [`run_scenario`] executes any [`ProtocolKind`] through it;
//! * [`sweep()`] grids over boundaries × partition instants × heal instants ×
//!   delay schedules and reports every atomicity violation or blocked site;
//! * [`cases`] classifies transient-partition runs into the paper's Sec. 6
//!   case tree and measures the per-case worst-case waits.
//!
//! ```
//! use ptp_core::{run_scenario, ProtocolKind, Scenario};
//! use ptp_simnet::SiteId;
//!
//! // Cut slave 2 off right as the master's prepares go out.
//! let scenario = Scenario::new(3).partition_g2(vec![SiteId(2)], 2500);
//! let result = run_scenario(ProtocolKind::HuangLi3pc, &scenario);
//! assert!(result.verdict.is_resilient());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cases;
pub mod report;
pub mod run;
pub mod scenario;
pub mod sweep;

pub use run::{build_cluster, run_scenario, run_scenario_with, ScenarioResult};
pub use scenario::{PartitionShape, ProtocolKind, Scenario};
pub use sweep::{
    all_simple_boundaries, sweep, sweep_parallel, sweep_serial, sweep_threads, sweep_with_threads,
    ScenarioDesc, ScenarioSpec, SweepGrid, SweepReport,
};

// Re-export the lower layers so examples and downstream users need only one
// dependency.
pub use ptp_ddb as ddb;
pub use ptp_livenet as livenet;
pub use ptp_model as model;
pub use ptp_protocols as protocols;
pub use ptp_simnet as simnet;
