//! Minimal fixed-width table rendering for the experiment binaries.
//!
//! The `exp_*` binaries in `ptp-bench` print the same rows the paper
//! states; this module keeps their formatting consistent and dependency-free.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', widths[c] - cell.len()));
            }
            line.trim_end().to_string()
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new(vec!["case", "bound"]);
        t.row(vec!["2.1", "T"]);
        t.row(vec!["3.2.2.2", "5T"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("case"));
        assert!(lines[2].starts_with("2.1"));
        // Column alignment: "bound"/"T"/"5T" start at the same offset.
        let col = lines[0].find("bound").unwrap();
        assert_eq!(lines[2].find('T'), Some(col));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }
}
