//! One-shot scenario execution.
//!
//! These free functions build a [`crate::Session`] internally, run it once
//! and discard it — convenient for single scenarios and tests. Anything
//! that executes *many* scenarios (sweeps, experiment loops) should hold a
//! `Session` so the cluster and simulator buffers are built once and
//! reused.

use crate::scenario::{ProtocolKind, Scenario};
use crate::session::Session;
use ptp_protocols::{RunOptions, SiteOutcome, Verdict};
use ptp_simnet::{RunReport, Trace};

/// The result of one scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Atomicity/blocking verdict.
    pub verdict: Verdict,
    /// Per-site outcomes.
    pub outcomes: Vec<SiteOutcome>,
    /// Full network trace (for timing measurements and debugging). Empty
    /// unless the run used [`ptp_protocols::TraceMode::Record`].
    pub trace: Trace,
    /// Simulator report.
    pub report: RunReport,
}

/// Runs `kind` through `scenario` once with typed [`RunOptions`].
pub fn run_scenario_opts(
    kind: ProtocolKind,
    scenario: &Scenario,
    options: &RunOptions,
) -> ScenarioResult {
    Session::new(kind, scenario.n).run_with(scenario, options)
}

/// Runs `kind` through `scenario` once and judges the outcome, recording a
/// full trace (equivalent to [`run_scenario_opts`] with
/// [`RunOptions::recording`]).
pub fn run_scenario(kind: ProtocolKind, scenario: &Scenario) -> ScenarioResult {
    run_scenario_opts(kind, scenario, &RunOptions::recording())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptp_model::Decision;
    use ptp_protocols::api::Vote;
    use ptp_simnet::SiteId;

    #[test]
    fn every_protocol_commits_failure_free() {
        let s = Scenario::new(3);
        for kind in ProtocolKind::ALL {
            let r = run_scenario(kind, &s);
            assert_eq!(r.verdict, Verdict::AllCommit, "{}", kind.name());
        }
    }

    #[test]
    fn every_protocol_aborts_on_no_vote() {
        let s = Scenario::new(3).votes(vec![Vote::Yes, Vote::No]);
        for kind in ProtocolKind::ALL {
            let r = run_scenario(kind, &s);
            assert_eq!(r.verdict, Verdict::AllAbort, "{}", kind.name());
        }
    }

    #[test]
    fn plain_2pc_blocks_under_partition() {
        // Partition strikes while the slaves wait for the decision: the cut
        // slave can never learn it and blocks (the paper's Sec. 1 story).
        let s = Scenario::new(3).partition_g2(vec![SiteId(2)], 2100);
        let r = run_scenario(ProtocolKind::Plain2pc, &s);
        assert!(
            matches!(r.verdict, Verdict::Blocked { .. }),
            "expected blocking, got {:?}",
            r.verdict
        );
    }

    #[test]
    fn huang_li_survives_a_nasty_partition() {
        // Split right as prepares are in flight.
        let s = Scenario::new(4).partition_g2(vec![SiteId(2), SiteId(3)], 2500);
        let r = run_scenario(ProtocolKind::HuangLi3pc, &s);
        assert!(r.verdict.is_resilient(), "{:?}", r.verdict);
    }

    #[test]
    fn huang_li_decides_commit_when_no_partition_interferes() {
        let s = Scenario::new(5);
        let r = run_scenario(ProtocolKind::HuangLi3pc, &s);
        for o in &r.outcomes {
            assert_eq!(o.decision, Some(Decision::Commit));
        }
    }

    #[test]
    fn counters_mode_matches_recording_mode_on_transient_partition() {
        // The TraceMode choice must never feed back into protocol
        // behaviour: verdict, per-site outcomes and event counters all
        // match; only the trace itself is withheld.
        let s = Scenario::new(4)
            .transient_partition(vec![SiteId(2), SiteId(3)], 2500, 7500)
            .delay(ptp_simnet::DelayModel::Uniform { seed: 42, min: 1, max: 1000 });
        for kind in ProtocolKind::ALL {
            let recorded = run_scenario_opts(kind, &s, &RunOptions::recording());
            let quiet = run_scenario_opts(kind, &s, &RunOptions::new());
            assert_eq!(recorded.verdict, quiet.verdict, "{}", kind.name());
            assert_eq!(recorded.outcomes, quiet.outcomes, "{}", kind.name());
            assert_eq!(recorded.report.counters, quiet.report.counters, "{}", kind.name());
            assert_eq!(recorded.report.events, quiet.report.events, "{}", kind.name());
            assert!(!recorded.trace.is_empty(), "{}", kind.name());
            assert!(quiet.trace.is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn quorum_minority_blocks() {
        // n=3 majority quorums: the lone slave cut off mid-protocol cannot
        // assemble any quorum and blocks.
        let s = Scenario::new(3).partition_g2(vec![SiteId(2)], 2100);
        let r = run_scenario(ProtocolKind::QuorumMajority, &s);
        match r.verdict {
            Verdict::Blocked { ref undecided, .. } => {
                assert_eq!(undecided, &vec![SiteId(2)]);
            }
            ref other => panic!("expected minority blocking, got {other:?}"),
        }
    }
}
