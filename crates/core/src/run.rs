//! One-shot scenario execution.

use crate::scenario::{ProtocolKind, Scenario};
use ptp_protocols::api::Participant;
use ptp_protocols::clusters::{
    extended_2pc_cluster, huang_li_3pc_cluster, huang_li_4pc_cluster, naive_augmented_3pc_cluster,
    plain_2pc_cluster, plain_3pc_cluster,
};
use ptp_protocols::quorum::quorum_cluster;
use ptp_protocols::runner::{run_protocol_with, ProtocolRun};
use ptp_protocols::termination::TerminationVariant;
use ptp_protocols::{SiteOutcome, Verdict};
use ptp_simnet::{RunReport, Trace};

/// The result of one scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Atomicity/blocking verdict.
    pub verdict: Verdict,
    /// Per-site outcomes.
    pub outcomes: Vec<SiteOutcome>,
    /// Full network trace (for timing measurements and debugging).
    pub trace: Trace,
    /// Simulator report.
    pub report: RunReport,
}

/// Builds the participant vector for a protocol kind.
pub fn build_cluster(kind: ProtocolKind, scenario: &Scenario) -> Vec<Box<dyn Participant>> {
    let n = scenario.n;
    let votes = &scenario.votes;
    match kind {
        ProtocolKind::Plain2pc => plain_2pc_cluster(n, votes),
        ProtocolKind::Extended2pc => extended_2pc_cluster(n, votes),
        ProtocolKind::Plain3pc => plain_3pc_cluster(n, votes),
        ProtocolKind::Naive3pc => naive_augmented_3pc_cluster(n, votes),
        ProtocolKind::HuangLi3pc => huang_li_3pc_cluster(n, votes, TerminationVariant::Transient),
        ProtocolKind::HuangLi3pcStatic => {
            huang_li_3pc_cluster(n, votes, TerminationVariant::Static)
        }
        ProtocolKind::HuangLi4pc => huang_li_4pc_cluster(n, votes, TerminationVariant::Transient),
        ProtocolKind::QuorumMajority => {
            quorum_cluster(kind.quorum_config(n).expect("quorum kind"), votes)
        }
    }
}

/// Runs `kind` through `scenario` and judges the outcome, recording a full
/// trace (equivalent to [`run_scenario_with`] with `record_trace = true`).
pub fn run_scenario(kind: ProtocolKind, scenario: &Scenario) -> ScenarioResult {
    run_scenario_with(kind, scenario, true)
}

/// Runs `kind` through `scenario` with an explicit tracing choice.
///
/// With `record_trace = false` the simulation uses the null
/// [`ptp_simnet::TraceSink`]: [`ScenarioResult::trace`] comes back empty
/// and no per-event allocation happens, but the verdict, outcomes and
/// report (with event counters) are byte-identical to a recorded run. The
/// sweep engine runs every grid cell this way.
pub fn run_scenario_with(
    kind: ProtocolKind,
    scenario: &Scenario,
    record_trace: bool,
) -> ScenarioResult {
    let parts = build_cluster(kind, scenario);
    let ProtocolRun { outcomes, trace, report } = run_protocol_with(
        parts,
        scenario.net_config(),
        scenario.partition_engine(),
        &scenario.delay,
        scenario.failures.clone(),
        record_trace,
    );
    ScenarioResult { verdict: Verdict::judge(&outcomes), outcomes, trace, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptp_model::Decision;
    use ptp_protocols::api::Vote;
    use ptp_simnet::SiteId;

    #[test]
    fn every_protocol_commits_failure_free() {
        let s = Scenario::new(3);
        for kind in ProtocolKind::ALL {
            let r = run_scenario(kind, &s);
            assert_eq!(r.verdict, Verdict::AllCommit, "{}", kind.name());
        }
    }

    #[test]
    fn every_protocol_aborts_on_no_vote() {
        let s = Scenario::new(3).votes(vec![Vote::Yes, Vote::No]);
        for kind in ProtocolKind::ALL {
            let r = run_scenario(kind, &s);
            assert_eq!(r.verdict, Verdict::AllAbort, "{}", kind.name());
        }
    }

    #[test]
    fn plain_2pc_blocks_under_partition() {
        // Partition strikes while the slaves wait for the decision: the cut
        // slave can never learn it and blocks (the paper's Sec. 1 story).
        let s = Scenario::new(3).partition_g2(vec![SiteId(2)], 2100);
        let r = run_scenario(ProtocolKind::Plain2pc, &s);
        assert!(
            matches!(r.verdict, Verdict::Blocked { .. }),
            "expected blocking, got {:?}",
            r.verdict
        );
    }

    #[test]
    fn huang_li_survives_a_nasty_partition() {
        // Split right as prepares are in flight.
        let s = Scenario::new(4).partition_g2(vec![SiteId(2), SiteId(3)], 2500);
        let r = run_scenario(ProtocolKind::HuangLi3pc, &s);
        assert!(r.verdict.is_resilient(), "{:?}", r.verdict);
    }

    #[test]
    fn huang_li_decides_commit_when_no_partition_interferes() {
        let s = Scenario::new(5);
        let r = run_scenario(ProtocolKind::HuangLi3pc, &s);
        for o in &r.outcomes {
            assert_eq!(o.decision, Some(Decision::Commit));
        }
    }

    #[test]
    fn null_sink_matches_recording_sink_on_transient_partition() {
        // The TraceSink choice must never feed back into protocol
        // behaviour: verdict, per-site outcomes and event counters all
        // match; only the trace itself is withheld.
        let s = Scenario::new(4)
            .transient_partition(vec![SiteId(2), SiteId(3)], 2500, 7500)
            .delay(ptp_simnet::DelayModel::Uniform { seed: 42, min: 1, max: 1000 });
        for kind in ProtocolKind::ALL {
            let recorded = run_scenario_with(kind, &s, true);
            let quiet = run_scenario_with(kind, &s, false);
            assert_eq!(recorded.verdict, quiet.verdict, "{}", kind.name());
            assert_eq!(recorded.outcomes, quiet.outcomes, "{}", kind.name());
            assert_eq!(recorded.report.counters, quiet.report.counters, "{}", kind.name());
            assert_eq!(recorded.report.events, quiet.report.events, "{}", kind.name());
            assert!(!recorded.trace.is_empty(), "{}", kind.name());
            assert!(quiet.trace.is_empty(), "{}", kind.name());
        }
    }

    #[test]
    fn quorum_minority_blocks() {
        // n=3 majority quorums: the lone slave cut off mid-protocol cannot
        // assemble any quorum and blocks.
        let s = Scenario::new(3).partition_g2(vec![SiteId(2)], 2100);
        let r = run_scenario(ProtocolKind::QuorumMajority, &s);
        match r.verdict {
            Verdict::Blocked { ref undecided, .. } => {
                assert_eq!(undecided, &vec![SiteId(2)]);
            }
            ref other => panic!("expected minority blocking, got {other:?}"),
        }
    }
}
