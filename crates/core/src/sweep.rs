//! Resilience sweeps: exhaustive grids over partition boundaries, partition
//! instants, heal instants, and delay schedules.
//!
//! This is the experimental engine behind Theorem 9's claim (E10): the
//! paper proves the termination protocol resilient; we *test* it against
//! every simple boundary × a dense grid of partition times × several delay
//! schedules, and report any scenario whose verdict is not
//! all-commit/all-abort. The same engine condemns the baselines (E2, E3,
//! E5) by exhibiting their counterexample scenarios.
//!
//! ## Execution model
//!
//! Every grid cell is independent (each simulation is seeded from its own
//! `DelayModel`), so the engine enumerates cells by flat index
//! ([`SweepGrid::scenario`]) and fans contiguous index blocks out across a
//! scoped thread pool. Workers fold their blocks into partial
//! [`SweepReport`]s which are reduced **in block order**, so
//! [`sweep_parallel`] returns bit-identical reports — kept counterexamples
//! included — to [`sweep_serial`] at any thread count. Each worker owns one
//! [`crate::Session`] (the cluster and simulator buffers are built once per
//! worker, not once per cell) plus one [`Scenario`] scratch buffer (votes /
//! G2 / delay are only rewritten when the decoded indices change), and runs
//! cells through the verdict-only fast path — so the steady-state hot path
//! performs no cluster construction, no participant boxing, no G1/G2
//! rebuild, and no trace allocation.

use crate::scenario::{PartitionSchedule, PartitionShape, ProtocolKind, Scenario};
use crate::session::Session;
use ptp_protocols::api::Vote;
use ptp_protocols::{RunOptions, Verdict};
use ptp_simnet::{DelayModel, PartitionMode, SiteId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Every simple boundary for `n` sites: the non-master group G2 ranges over
/// all non-empty proper subsets of the slaves. (The master defines G1,
/// Sec. 5.2.)
pub fn all_simple_boundaries(n: usize) -> Vec<Vec<SiteId>> {
    let slaves: Vec<SiteId> = (1..n as u16).map(SiteId).collect();
    let mut out = Vec::new();
    // Non-empty subsets of slaves; G2 = subset. G2 = all slaves is allowed
    // (master alone in G1).
    for mask in 1..(1u32 << slaves.len()) {
        let g2: Vec<SiteId> = slaves
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, s)| *s)
            .collect();
        out.push(g2);
    }
    out
}

/// A family of partition *schedules*, parameterized by one grid cell's
/// boundary (`g2`), partition instant and heal delay. The sweep engine
/// enumerates these alongside the classic axes, so one grid can compare the
/// paper's simple partitioning against the multi-episode / multi-group
/// generalizations that break its assumptions.
///
/// For every shape the grid's heal axis governs the **final** episode
/// (relative to that episode's start); earlier episodes derive their
/// instants from the shape's own parameters.
///
/// # Examples
///
/// ```
/// use ptp_core::{PartitionSchedule, ScheduleShape};
/// use ptp_simnet::SiteId;
///
/// // Derive the concrete schedule a nested secession implies for the
/// // boundary G2 = {2, 3} of a 4-site cluster, split at t = 2000.
/// let shape = ScheduleShape::NestedSecession { after: 1500 };
/// let mut schedule = PartitionSchedule::new();
/// shape.write_schedule(4, &[SiteId(2), SiteId(3)], 2000, None, &mut schedule);
/// assert_eq!(schedule.len(), 2);
/// assert_eq!(schedule.episodes()[0].groups.len(), 2); // [G1 | G2]
/// assert_eq!(schedule.episodes()[1].groups.len(), 3); // [G1 | {2} | {3}]
/// assert_eq!(schedule.episodes()[1].at, 3500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleShape {
    /// The paper's model: one episode, two groups `[G1 | G2]` — exactly
    /// what the legacy single-episode (`reset_single`) path replays.
    Simple,
    /// Split `[G1 | G2]` at `at`, heal `heal_after` ticks later, then split
    /// along the same boundary again `resplit_after` ticks after the heal.
    /// Sec. 6's repeated-transient-partition story as a schedule.
    SplitHealResplit {
        /// Ticks from the split to the heal.
        heal_after: u64,
        /// Ticks from the heal to the second split.
        resplit_after: u64,
    },
    /// One episode, `1 + g2_groups` groups: G2 is dealt round-robin into
    /// `g2_groups` fragments (`g2_groups >= 2` gives the multiple
    /// partitioning of experiment E12).
    MultiWay {
        /// Number of fragments G2 shatters into.
        g2_groups: usize,
    },
    /// Nested secession: simple split `[G1 | G2]` at `at`; `after` ticks
    /// later the tail half of G2 secedes from its own fragment, giving
    /// three groups with no reconnect instant in between.
    NestedSecession {
        /// Ticks from the first split to the inner secession.
        after: u64,
    },
}

impl ScheduleShape {
    /// The default schedule families [`SweepGrid::schedule_families`]
    /// enumerates: the simple baseline plus three multi-episode /
    /// multi-group generalizations.
    pub const FAMILIES: [ScheduleShape; 4] = [
        ScheduleShape::Simple,
        ScheduleShape::SplitHealResplit { heal_after: 1500, resplit_after: 1500 },
        ScheduleShape::MultiWay { g2_groups: 2 },
        ScheduleShape::NestedSecession { after: 1500 },
    ];

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleShape::Simple => "simple",
            ScheduleShape::SplitHealResplit { .. } => "split-heal-resplit",
            ScheduleShape::MultiWay { .. } => "multi-way",
            ScheduleShape::NestedSecession { .. } => "nested-secession",
        }
    }

    /// Episodes the derived schedule will have.
    pub fn episode_count(self) -> usize {
        match self {
            ScheduleShape::Simple | ScheduleShape::MultiWay { .. } => 1,
            ScheduleShape::SplitHealResplit { .. } | ScheduleShape::NestedSecession { .. } => 2,
        }
    }

    /// True for shapes that leave the paper's simple-partitioning model
    /// (more than one episode, or more than two groups).
    pub fn is_simple(self) -> bool {
        matches!(self, ScheduleShape::Simple)
    }

    /// Writes the concrete schedule this shape derives from one grid cell —
    /// boundary `g2` (G1 is the complement in `0..n`), partition instant
    /// `at`, final-episode heal delay `heal` — into `schedule` in place,
    /// recycling its episode and group buffers.
    pub fn write_schedule(
        self,
        n: usize,
        g2: &[SiteId],
        at: u64,
        heal: Option<u64>,
        schedule: &mut PartitionSchedule,
    ) {
        fn fill_g1(buf: &mut Vec<SiteId>, n: usize, g2: &[SiteId]) {
            buf.extend((0..n as u16).map(SiteId).filter(|s| !g2.contains(s)));
        }
        match self {
            ScheduleShape::Simple => {
                schedule.reset(1);
                let bufs = schedule.episode_groups(0, at, heal.map(|h| at + h), 2);
                fill_g1(&mut bufs[0], n, g2);
                bufs[1].extend_from_slice(g2);
            }
            ScheduleShape::SplitHealResplit { heal_after, resplit_after } => {
                assert!(heal_after > 0, "the first episode must heal before the re-split");
                schedule.reset(2);
                let bufs = schedule.episode_groups(0, at, Some(at + heal_after), 2);
                fill_g1(&mut bufs[0], n, g2);
                bufs[1].extend_from_slice(g2);
                let at2 = at + heal_after + resplit_after;
                let bufs = schedule.episode_groups(1, at2, heal.map(|h| at2 + h), 2);
                fill_g1(&mut bufs[0], n, g2);
                bufs[1].extend_from_slice(g2);
            }
            ScheduleShape::MultiWay { g2_groups } => {
                assert!(g2_groups >= 1, "G2 must shatter into at least one fragment");
                schedule.reset(1);
                let bufs = schedule.episode_groups(0, at, heal.map(|h| at + h), 1 + g2_groups);
                fill_g1(&mut bufs[0], n, g2);
                for (i, site) in g2.iter().enumerate() {
                    bufs[1 + i % g2_groups].push(*site);
                }
            }
            ScheduleShape::NestedSecession { after } => {
                assert!(after > 0, "the secession must follow the first split");
                schedule.reset(2);
                let bufs = schedule.episode_groups(0, at, Some(at + after), 2);
                fill_g1(&mut bufs[0], n, g2);
                bufs[1].extend_from_slice(g2);
                let at2 = at + after;
                let bufs = schedule.episode_groups(1, at2, heal.map(|h| at2 + h), 3);
                fill_g1(&mut bufs[0], n, g2);
                let head = g2.len().div_ceil(2);
                bufs[1].extend_from_slice(&g2[..head]);
                bufs[2].extend_from_slice(&g2[head..]);
            }
        }
    }
}

/// The grid of scenarios a sweep explores.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Cluster size.
    pub n: usize,
    /// Schedule families to try (default: just [`ScheduleShape::Simple`],
    /// the paper's model — existing grids are unchanged).
    pub shapes: Vec<ScheduleShape>,
    /// G2 groups to try (default: all simple boundaries).
    pub boundaries: Vec<Vec<SiteId>>,
    /// Partition instants in ticks (default: every T/4 from 0 to 8T).
    pub partition_times: Vec<u64>,
    /// Heal delays in ticks after the partition instant (`None` entries mean
    /// a permanent partition).
    pub heals: Vec<Option<u64>>,
    /// Delay models to try.
    pub delays: Vec<DelayModel>,
    /// Vote vectors to try (default: unanimous yes — the interesting case
    /// for partition resilience).
    pub votes: Vec<Vec<Vote>>,
    /// Optimistic or pessimistic undeliverable handling.
    pub mode: PartitionMode,
}

impl SweepGrid {
    /// The default grid for `n` sites with `t_unit = 1000`: all boundaries,
    /// partition times every T/4 up to 8T, permanent partitions, three delay
    /// schedules, unanimous yes.
    pub fn standard(n: usize) -> SweepGrid {
        let t = 1000u64;
        SweepGrid {
            n,
            shapes: vec![ScheduleShape::Simple],
            boundaries: all_simple_boundaries(n),
            partition_times: (0..=32).map(|i| i * t / 4).collect(),
            heals: vec![None],
            delays: vec![
                DelayModel::Fixed(t),
                DelayModel::Fixed(t / 2),
                DelayModel::Uniform { seed: 7, min: 1, max: t },
            ],
            votes: vec![vec![Vote::Yes; n - 1]],
            mode: PartitionMode::Optimistic,
        }
    }

    /// The standard grid extended over every default schedule family
    /// ([`ScheduleShape::FAMILIES`]): the simple baseline plus
    /// split→heal→re-split, three-way splits and nested secessions, each
    /// derived from the same boundary/instant/heal axes.
    pub fn schedule_families(n: usize) -> SweepGrid {
        let mut grid = SweepGrid::standard(n);
        grid.shapes = ScheduleShape::FAMILIES.to_vec();
        grid
    }

    /// Replaces the schedule-family axis.
    pub fn with_shapes(mut self, shapes: Vec<ScheduleShape>) -> SweepGrid {
        self.shapes = shapes;
        self
    }

    /// Adds transient-partition cases: heal after each given multiple of
    /// T/2 up to `max_heal_t * 2` steps.
    pub fn with_transient_heals(mut self, max_heal_t: u64) -> SweepGrid {
        self.heals =
            std::iter::once(None).chain((1..=max_heal_t * 2).map(|i| Some(i * 500))).collect();
        self
    }

    /// Replaces the vote grid.
    pub fn with_votes(mut self, votes: Vec<Vec<Vote>>) -> SweepGrid {
        self.votes = votes;
        self
    }

    /// Switches to the pessimistic (message-loss) model — experiment E12.
    pub fn pessimistic(mut self) -> SweepGrid {
        self.mode = PartitionMode::Pessimistic;
        self
    }

    /// Number of scenarios the grid will run, if it fits in `usize`.
    ///
    /// Five-way products overflow easily (a few hundred entries per axis
    /// already exceed `u64` territory on 32-bit hosts), so the arithmetic
    /// is checked.
    pub fn checked_size(&self) -> Option<usize> {
        self.shapes
            .len()
            .checked_mul(self.boundaries.len())?
            .checked_mul(self.partition_times.len())?
            .checked_mul(self.heals.len())?
            .checked_mul(self.delays.len())?
            .checked_mul(self.votes.len())
    }

    /// Number of scenarios the grid will run, saturating at `usize::MAX`
    /// instead of silently wrapping on overflow. Callers sizing real sweeps
    /// should prefer [`SweepGrid::checked_size`]; a saturated grid cannot
    /// actually be executed.
    pub fn size(&self) -> usize {
        self.checked_size().unwrap_or(usize::MAX)
    }

    /// Decodes flat cell index `index` (row-major over shapes × boundaries
    /// × partition times × heals × delays × votes — with a single
    /// [`ScheduleShape::Simple`] shape this is the exact order the old
    /// nested loops used) into a borrowed scenario description.
    ///
    /// # Panics
    ///
    /// If `index >= self.size()`.
    pub fn scenario(&self, index: usize) -> ScenarioSpec<'_> {
        assert!(index < self.size(), "scenario index {index} out of range");
        let mut rest = index;
        let vote_index = rest % self.votes.len();
        rest /= self.votes.len();
        let delay_index = rest % self.delays.len();
        rest /= self.delays.len();
        let heal = self.heals[rest % self.heals.len()];
        rest /= self.heals.len();
        let at = self.partition_times[rest % self.partition_times.len()];
        rest /= self.partition_times.len();
        let g2 = &self.boundaries[rest % self.boundaries.len()];
        rest /= self.boundaries.len();
        let shape = self.shapes[rest];
        ScenarioSpec { shape, g2, at, heal, delay_index, vote_index }
    }
}

/// One grid cell, decoded by [`SweepGrid::scenario`]: everything needed to
/// run the scenario, borrowed from the grid (no per-cell allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec<'g> {
    /// The schedule family the cell instantiates.
    pub shape: ScheduleShape,
    /// The G2 group.
    pub g2: &'g [SiteId],
    /// Partition instant (ticks).
    pub at: u64,
    /// Heal delay after the **final** episode's start (`None` = permanent).
    /// For single-episode shapes that episode starts at `at`, matching the
    /// old nested loops exactly.
    pub heal: Option<u64>,
    /// Index into the grid's delay list.
    pub delay_index: usize,
    /// Index into the grid's vote list.
    pub vote_index: usize,
}

impl ScenarioSpec<'_> {
    /// When this cell's final episode starts: `at` for single-episode
    /// shapes, later for the two-episode families (mirrors
    /// [`ScheduleShape::write_schedule`]'s derivation).
    pub fn final_episode_at(&self) -> u64 {
        match self.shape {
            ScheduleShape::Simple | ScheduleShape::MultiWay { .. } => self.at,
            ScheduleShape::SplitHealResplit { heal_after, resplit_after } => {
                self.at + heal_after + resplit_after
            }
            ScheduleShape::NestedSecession { after } => self.at + after,
        }
    }

    /// Absolute heal instant of the final episode — for the Simple shape,
    /// exactly what the old nested loops computed.
    pub fn heal_at(&self) -> Option<u64> {
        self.heal.map(|h| self.final_episode_at() + h)
    }

    /// Materialises the owned per-scenario record for reporting, attaching
    /// the observed verdict.
    pub fn describe(&self, verdict: Verdict) -> ScenarioDesc {
        ScenarioDesc {
            shape: self.shape,
            g2: self.g2.to_vec(),
            at: self.at,
            heal_at: self.heal_at(),
            delay_index: self.delay_index,
            vote_index: self.vote_index,
            verdict,
        }
    }
}

/// Compact identification of one failing scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioDesc {
    /// The schedule family the cell instantiated.
    pub shape: ScheduleShape,
    /// The G2 group.
    pub g2: Vec<SiteId>,
    /// Partition instant (ticks).
    pub at: u64,
    /// Heal instant (ticks), if transient.
    pub heal_at: Option<u64>,
    /// Index into the grid's delay list.
    pub delay_index: usize,
    /// Index into the grid's vote list.
    pub vote_index: usize,
    /// The verdict observed.
    pub verdict: Verdict,
}

/// Aggregated sweep results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Scenarios run.
    pub total: usize,
    /// Scenarios where every site committed.
    pub all_commit: usize,
    /// Scenarios where every site aborted.
    pub all_abort: usize,
    /// Scenarios with undecided sites (first few kept for reporting).
    pub blocked: Vec<ScenarioDesc>,
    /// Scenarios violating atomicity (first few kept for reporting).
    pub inconsistent: Vec<ScenarioDesc>,
    /// Counts beyond the kept examples.
    pub blocked_count: usize,
    /// Counts beyond the kept examples.
    pub inconsistent_count: usize,
}

impl SweepReport {
    /// Resilient on the whole grid: atomic and nonblocking everywhere.
    pub fn fully_resilient(&self) -> bool {
        self.blocked_count == 0 && self.inconsistent_count == 0
    }

    /// Atomicity held everywhere (blocking allowed).
    pub fn fully_atomic(&self) -> bool {
        self.inconsistent_count == 0
    }

    /// Folds one cell's verdict in, materialising a [`ScenarioDesc`] (and
    /// its G2 clone) only for kept counterexamples — the all-commit /
    /// all-abort bulk of a healthy sweep stays allocation-free.
    fn record_cell(&mut self, spec: &ScenarioSpec<'_>, verdict: Verdict) {
        self.total += 1;
        match verdict {
            Verdict::AllCommit => self.all_commit += 1,
            Verdict::AllAbort => self.all_abort += 1,
            Verdict::Blocked { .. } => {
                self.blocked_count += 1;
                if self.blocked.len() < KEEP {
                    self.blocked.push(spec.describe(verdict));
                }
            }
            Verdict::Inconsistent { .. } => {
                self.inconsistent_count += 1;
                if self.inconsistent.len() < KEEP {
                    self.inconsistent.push(spec.describe(verdict));
                }
            }
        }
    }

    /// Merges `other` (covering strictly later cell indices) into `self`,
    /// preserving the first-`KEEP` kept-example semantics of a serial scan.
    fn absorb(&mut self, other: SweepReport) {
        self.total += other.total;
        self.all_commit += other.all_commit;
        self.all_abort += other.all_abort;
        self.blocked_count += other.blocked_count;
        self.inconsistent_count += other.inconsistent_count;
        for desc in other.blocked {
            if self.blocked.len() < KEEP {
                self.blocked.push(desc);
            }
        }
        for desc in other.inconsistent {
            if self.inconsistent.len() < KEEP {
                self.inconsistent.push(desc);
            }
        }
    }
}

/// Kept counterexamples per category (the rest are only counted).
const KEEP: usize = 8;

/// Cells per work unit handed to a sweep worker. Large enough that the
/// shared counter is touched rarely, small enough to load-balance the
/// uneven cost of blocked-vs-clean scenarios.
const BLOCK: usize = 64;

/// Grids below this size run serially even when threads are available —
/// thread spawn/teardown would dominate.
const PARALLEL_THRESHOLD: usize = 2 * BLOCK;

/// Per-sweep scenario scratch: one [`Scenario`] reused across every cell,
/// so votes/G2/delay buffers are recycled instead of reallocated
/// ~`grid.size()` times. The session it drives is supplied per call —
/// owned by a worker ([`CellRunner`]) or borrowed from a caller's
/// [`crate::SessionPool`] ([`sweep_with_session`]).
struct CellState {
    scenario: Scenario,
    options: RunOptions,
    delay_index: Option<usize>,
}

impl CellState {
    fn new(grid: &SweepGrid) -> CellState {
        let mut scenario = Scenario::new(grid.n);
        scenario.mode = grid.mode;
        CellState { scenario, options: RunOptions::new(), delay_index: None }
    }

    fn run(&mut self, session: &mut Session, grid: &SweepGrid, spec: &ScenarioSpec<'_>) -> Verdict {
        let scenario = &mut self.scenario;
        if self.delay_index != Some(spec.delay_index) {
            // DelayModel clones can be heavy (scheduled/per-link maps);
            // vote-index varies fastest in the decode order, so this
            // triggers once per delay change, not once per cell.
            scenario.delay = grid.delays[spec.delay_index].clone();
            self.delay_index = Some(spec.delay_index);
        }
        scenario.votes.clear();
        scenario.votes.extend_from_slice(&grid.votes[spec.vote_index]);
        match spec.shape {
            // The legacy single-episode fast path: rewrite the Simple shape
            // (and, through it, the engine's `reset_single` buffers) in
            // place, exactly as before the schedule axis existed.
            ScheduleShape::Simple => match &mut scenario.partition {
                PartitionShape::Simple { g2, at, heal_at } => {
                    g2.clear();
                    g2.extend_from_slice(spec.g2);
                    *at = spec.at;
                    *heal_at = spec.heal_at();
                }
                other => {
                    *other = PartitionShape::Simple {
                        g2: spec.g2.to_vec(),
                        at: spec.at,
                        heal_at: spec.heal_at(),
                    };
                }
            },
            // Multi-episode / multi-group families: rewrite the scenario's
            // schedule in place (episode and group buffers recycled; the
            // shape axis varies slowest, so the Simple↔Schedule variant
            // switch happens once per family, not once per cell).
            shape => {
                let schedule = match &mut scenario.partition {
                    PartitionShape::Schedule(schedule) => schedule,
                    other => {
                        *other = PartitionShape::Schedule(PartitionSchedule::default());
                        let PartitionShape::Schedule(schedule) = other else { unreachable!() };
                        schedule
                    }
                };
                shape.write_schedule(grid.n, spec.g2, spec.at, spec.heal, schedule);
            }
        }
        session.verdict(scenario, &self.options)
    }
}

/// Worker-local scratch for the parallel path: an owned [`Session`]
/// (cluster + simulator buffers built once per worker) plus the shared
/// [`CellState`] scenario recycling.
struct CellRunner {
    session: Session,
    cells: CellState,
}

impl CellRunner {
    fn new(kind: ProtocolKind, grid: &SweepGrid) -> CellRunner {
        CellRunner { session: Session::new(kind, grid.n), cells: CellState::new(grid) }
    }

    fn run(&mut self, grid: &SweepGrid, spec: &ScenarioSpec<'_>) -> Verdict {
        self.cells.run(&mut self.session, grid, spec)
    }
}

/// Number of worker threads a parallel sweep will use: the
/// `PTP_SWEEP_THREADS` environment variable if set, else the machine's
/// available parallelism.
pub fn sweep_threads() -> usize {
    std::env::var("PTP_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// Runs `kind` over every scenario in the grid.
///
/// Dispatches to [`sweep_parallel`] when the grid is large enough to
/// amortise thread startup and more than one thread is available (see
/// [`sweep_threads`]), else to [`sweep_serial`]. The two produce identical
/// reports, so callers never need to care which ran.
pub fn sweep(kind: ProtocolKind, grid: &SweepGrid) -> SweepReport {
    let threads = sweep_threads();
    if threads > 1 && grid.size() >= PARALLEL_THRESHOLD {
        sweep_with_threads(kind, grid, threads)
    } else {
        sweep_serial(kind, grid)
    }
}

/// Runs the grid on the calling thread, in flat-index order.
pub fn sweep_serial(kind: ProtocolKind, grid: &SweepGrid) -> SweepReport {
    let mut session = Session::new(kind, grid.n);
    sweep_with_session(&mut session, grid)
}

/// Runs the grid serially with event-attribution profiling switched on,
/// returning the verdict report together with the merged
/// [`ptp_simnet::Profile`] across every cell — the `bench_profile` path.
///
/// Serial on purpose: attribution totals are deterministic in structure
/// (same keys, same counts at any thread count), but the nanosecond
/// tallies are wall-clock measurements, so there is nothing to gain from
/// racing workers; the report itself is identical to [`sweep_serial`].
pub fn sweep_profiled(kind: ProtocolKind, grid: &SweepGrid) -> (SweepReport, ptp_simnet::Profile) {
    let mut session = Session::new(kind, grid.n);
    session.set_profiling(true);
    let report = sweep_with_session(&mut session, grid);
    let profile = session.take_profile();
    (report, profile)
}

/// Runs the grid serially through a caller-owned [`Session`] — the
/// [`crate::SessionPool`] path: flows that sweep several grids over the
/// same `(kind, n)` clusters (the Theorem 9 scorecards, for instance) hold
/// one pool and reuse each cluster across every grid instead of rebuilding
/// it per sweep. Produces reports identical to [`sweep_serial`].
///
/// # Panics
///
/// If the session's cluster size differs from `grid.n`.
pub fn sweep_with_session(session: &mut Session, grid: &SweepGrid) -> SweepReport {
    assert_eq!(
        session.sites(),
        grid.n,
        "grid has {} sites but the session was built for {}",
        grid.n,
        session.sites()
    );
    let mut report = SweepReport::default();
    let mut cells = CellState::new(grid);
    for index in 0..grid.size() {
        let spec = grid.scenario(index);
        let verdict = cells.run(session, grid, &spec);
        report.record_cell(&spec, verdict);
    }
    report
}

/// Runs the grid across [`sweep_threads`] workers.
pub fn sweep_parallel(kind: ProtocolKind, grid: &SweepGrid) -> SweepReport {
    sweep_with_threads(kind, grid, sweep_threads())
}

/// Runs the grid across exactly `threads` workers (1 = serial).
///
/// Workers claim contiguous `BLOCK`-sized index ranges from a shared
/// counter and fold each into a partial [`SweepReport`]; the partials are
/// then reduced in ascending block order, which makes the result — totals
/// *and* the first-`KEEP` kept counterexamples — bit-identical to
/// [`sweep_serial`] regardless of scheduling.
pub fn sweep_with_threads(kind: ProtocolKind, grid: &SweepGrid, threads: usize) -> SweepReport {
    let total = grid.size();
    assert!(total < usize::MAX, "sweep grid size overflows usize");
    let blocks = total.div_ceil(BLOCK.max(1));
    let threads = threads.clamp(1, blocks.max(1));
    if threads <= 1 || total == 0 {
        return sweep_serial(kind, grid);
    }

    let next_block = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, SweepReport)>();
    let mut report = SweepReport::default();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next_block = &next_block;
            scope.spawn(move || {
                let mut runner = CellRunner::new(kind, grid);
                loop {
                    let block = next_block.fetch_add(1, Ordering::Relaxed);
                    if block >= blocks {
                        break;
                    }
                    let start = block * BLOCK;
                    let end = (start + BLOCK).min(total);
                    let mut partial = SweepReport::default();
                    for index in start..end {
                        let spec = grid.scenario(index);
                        let verdict = runner.run(grid, &spec);
                        partial.record_cell(&spec, verdict);
                    }
                    if tx.send((block, partial)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Eager in-order reduction on the caller's thread, overlapped with
        // the workers: absorb each block the moment every earlier block has
        // been absorbed, parking out-of-order arrivals in a small reorder
        // buffer. Memory stays bounded by scheduling skew (versus buffering
        // all O(blocks) partials and sorting at the end) and the result is
        // still byte-identical to a serial scan.
        let mut pending: std::collections::BTreeMap<usize, SweepReport> =
            std::collections::BTreeMap::new();
        let mut next_merge = 0usize;
        for (block, partial) in rx.iter() {
            pending.insert(block, partial);
            while let Some(ready) = pending.remove(&next_merge) {
                report.absorb(ready);
                next_merge += 1;
            }
        }
        debug_assert!(pending.is_empty(), "all blocks must merge once senders hang up");
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_enumerate_all_slave_subsets() {
        let b = all_simple_boundaries(4);
        // 2^3 - 1 non-empty subsets of {1,2,3}.
        assert_eq!(b.len(), 7);
        assert!(b.contains(&vec![SiteId(3)]));
        assert!(b.contains(&vec![SiteId(1), SiteId(2), SiteId(3)]));
    }

    #[test]
    fn grid_size_is_product() {
        let g = SweepGrid::standard(3);
        let expected = g.shapes.len()
            * g.boundaries.len()
            * g.partition_times.len()
            * g.heals.len()
            * g.delays.len()
            * g.votes.len();
        assert_eq!(g.size(), expected);
        assert_eq!(g.size(), 297);
        // The schedule-family grid multiplies in the shape axis.
        assert_eq!(SweepGrid::schedule_families(3).size(), 297 * ScheduleShape::FAMILIES.len());
    }

    #[test]
    fn huang_li_resilient_on_a_small_grid() {
        // A fast smoke version of E10; the full grid runs in the
        // integration suite and experiment binary.
        let mut grid = SweepGrid::standard(3);
        grid.partition_times = (0..=8).map(|i| i * 500).collect();
        grid.delays = vec![DelayModel::Fixed(1000)];
        let report = sweep(ProtocolKind::HuangLi3pc, &grid);
        assert!(report.fully_resilient(), "{report:?}");
        assert_eq!(report.total, grid.size());
    }

    #[test]
    fn extended_2pc_breaks_somewhere_on_the_grid() {
        // E2: the Sec. 3 observation — some multisite scenario violates
        // atomicity.
        let mut grid = SweepGrid::standard(3);
        grid.partition_times = (0..=16).map(|i| i * 250).collect();
        grid.delays = vec![DelayModel::Fixed(1000)];
        let report = sweep(ProtocolKind::Extended2pc, &grid);
        assert!(!report.fully_atomic(), "E2PC should violate atomicity at n=3");
    }

    #[test]
    fn naive_3pc_breaks_somewhere_on_the_grid() {
        let mut grid = SweepGrid::standard(3);
        grid.partition_times = (0..=16).map(|i| i * 250).collect();
        grid.delays = vec![DelayModel::Fixed(1000)];
        let report = sweep(ProtocolKind::Naive3pc, &grid);
        assert!(!report.fully_atomic(), "naive 3PC should violate atomicity at n=3");
    }

    #[test]
    fn plain_2pc_blocks_on_the_grid() {
        let mut grid = SweepGrid::standard(3);
        grid.partition_times = (0..=8).map(|i| i * 500).collect();
        grid.delays = vec![DelayModel::Fixed(1000)];
        let report = sweep(ProtocolKind::Plain2pc, &grid);
        assert!(report.blocked_count > 0);
        assert!(report.fully_atomic(), "2PC blocks but never lies");
    }

    #[test]
    fn scenario_decode_matches_nested_loop_order() {
        // The flat index must enumerate exactly what the old 5-deep nested
        // loops enumerated, in the same order.
        let grid = SweepGrid::standard(3)
            .with_transient_heals(2)
            .with_votes(vec![vec![Vote::Yes, Vote::Yes], vec![Vote::No, Vote::Yes]])
            .with_shapes(vec![
                ScheduleShape::Simple,
                ScheduleShape::NestedSecession { after: 1000 },
            ]);
        let mut index = 0usize;
        for &shape in &grid.shapes {
            for g2 in &grid.boundaries {
                for &at in &grid.partition_times {
                    for &heal in &grid.heals {
                        for delay_index in 0..grid.delays.len() {
                            for vote_index in 0..grid.votes.len() {
                                let spec = grid.scenario(index);
                                assert_eq!(spec.shape, shape);
                                assert_eq!(spec.g2, g2.as_slice());
                                assert_eq!(spec.at, at);
                                assert_eq!(spec.heal, heal);
                                assert_eq!(spec.delay_index, delay_index);
                                assert_eq!(spec.vote_index, vote_index);
                                index += 1;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(index, grid.size());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scenario_index_out_of_range_panics() {
        let grid = SweepGrid::standard(3);
        let _ = grid.scenario(grid.size());
    }

    #[test]
    fn size_is_overflow_safe() {
        let mut grid = SweepGrid::standard(3);
        // Five axes of 2^16 entries each: the true product (2^80) cannot
        // fit in a u64/usize; the old unchecked multiply silently wrapped.
        let n = 1usize << 16;
        grid.boundaries = vec![vec![SiteId(1)]; n];
        grid.partition_times = vec![0; n];
        grid.heals = vec![None; n];
        grid.delays = vec![DelayModel::Fixed(1); n];
        grid.votes = vec![vec![Vote::Yes, Vote::Yes]; n];
        assert_eq!(grid.checked_size(), None);
        assert_eq!(grid.size(), usize::MAX);
    }

    /// Field-for-field equality of two sweep reports, with panic messages
    /// that name the diverging field.
    fn assert_reports_identical(serial: &SweepReport, parallel: &SweepReport) {
        assert_eq!(serial.total, parallel.total, "total");
        assert_eq!(serial.all_commit, parallel.all_commit, "all_commit");
        assert_eq!(serial.all_abort, parallel.all_abort, "all_abort");
        assert_eq!(serial.blocked_count, parallel.blocked_count, "blocked_count");
        assert_eq!(serial.inconsistent_count, parallel.inconsistent_count, "inconsistent_count");
        assert_eq!(serial.blocked, parallel.blocked, "kept blocked examples");
        assert_eq!(serial.inconsistent, parallel.inconsistent, "kept inconsistent examples");
        assert_eq!(serial, parallel, "whole report");
    }

    #[test]
    fn parallel_sweep_identical_to_serial_on_standard_grid() {
        // The tentpole determinism guarantee: any thread count, same bytes.
        let grid = SweepGrid::standard(4);
        let serial = sweep_serial(ProtocolKind::HuangLi3pc, &grid);
        for threads in [2, 4, 7] {
            let parallel = sweep_with_threads(ProtocolKind::HuangLi3pc, &grid, threads);
            assert_reports_identical(&serial, &parallel);
        }
        assert_eq!(serial.total, grid.size());
        assert!(serial.fully_resilient(), "{serial:?}");
    }

    #[test]
    fn parallel_sweep_preserves_kept_examples_of_blocking_protocol() {
        // 2PC blocks all over this grid, so the first-8 kept examples are
        // actually exercised (not just empty-vs-empty).
        let mut grid = SweepGrid::standard(4);
        grid.partition_times = (0..=16).map(|i| i * 250).collect();
        grid.delays = vec![DelayModel::Fixed(1000), DelayModel::Fixed(500)];
        let serial = sweep_serial(ProtocolKind::Plain2pc, &grid);
        assert!(serial.blocked_count > KEEP, "grid too clean to test kept lists");
        assert_eq!(serial.blocked.len(), KEEP);
        let parallel = sweep_with_threads(ProtocolKind::Plain2pc, &grid, 4);
        assert_reports_identical(&serial, &parallel);
    }

    #[test]
    fn schedule_families_enumerate_distinct_multi_episode_shapes() {
        // The acceptance floor: at least three distinct non-simple shapes,
        // each deriving a structurally different schedule from one cell.
        let grid = SweepGrid::schedule_families(4);
        let multi: Vec<ScheduleShape> =
            grid.shapes.iter().copied().filter(|s| !s.is_simple()).collect();
        assert!(multi.len() >= 3, "need ≥3 multi-episode families, got {multi:?}");

        let g2 = [SiteId(2), SiteId(3)];
        let mut derived = Vec::new();
        for shape in &multi {
            let mut schedule = PartitionSchedule::new();
            shape.write_schedule(4, &g2, 2000, None, &mut schedule);
            assert!(
                schedule.len() > 1 || schedule.is_multi_group(),
                "{} stayed inside the simple model: {schedule:?}",
                shape.name()
            );
            derived.push(schedule);
        }
        // Structurally distinct: no two families derive the same schedule.
        for i in 0..derived.len() {
            for j in i + 1..derived.len() {
                assert_ne!(derived[i], derived[j], "{} == {}", multi[i].name(), multi[j].name());
            }
        }
    }

    #[test]
    fn described_heal_instant_matches_the_derived_schedule() {
        // ScenarioDesc must name the heal instant that actually occurs in
        // the run: the final episode's, which for two-episode shapes is
        // later than `at + heal`.
        let g2 = [SiteId(2), SiteId(3)];
        for shape in ScheduleShape::FAMILIES {
            let spec = ScenarioSpec {
                shape,
                g2: &g2,
                at: 2000,
                heal: Some(3000),
                delay_index: 0,
                vote_index: 0,
            };
            let mut schedule = PartitionSchedule::new();
            shape.write_schedule(4, &g2, spec.at, spec.heal, &mut schedule);
            let last = schedule.episodes().last().unwrap();
            assert_eq!(spec.final_episode_at(), last.at, "{}", shape.name());
            assert_eq!(spec.heal_at(), last.heal_at, "{}", shape.name());
            let desc = spec.describe(Verdict::AllCommit);
            assert_eq!(desc.heal_at, last.heal_at, "{}", shape.name());
        }
    }

    #[test]
    fn single_fragment_multiway_pins_schedule_path_to_legacy_path() {
        // MultiWay { g2_groups: 1 } derives exactly the single [G1 | G2]
        // episode the Simple shape replays through `reset_single` — but
        // through the schedule machinery. Sweeping both over the same grid
        // must agree cell-for-cell (only the recorded shape tag differs).
        let mut simple = SweepGrid::standard(3).with_transient_heals(1);
        simple.partition_times = (0..=8).map(|i| i * 500).collect();
        simple.delays = vec![DelayModel::Fixed(1000), DelayModel::Fixed(500)];
        let schedule = simple.clone().with_shapes(vec![ScheduleShape::MultiWay { g2_groups: 1 }]);
        for kind in [ProtocolKind::HuangLi3pc, ProtocolKind::Plain2pc] {
            let legacy = sweep_serial(kind, &simple);
            let pinned = sweep_serial(kind, &schedule);
            assert_eq!(legacy.total, pinned.total);
            assert_eq!(legacy.all_commit, pinned.all_commit, "{}", kind.name());
            assert_eq!(legacy.all_abort, pinned.all_abort, "{}", kind.name());
            assert_eq!(legacy.blocked_count, pinned.blocked_count, "{}", kind.name());
            assert_eq!(legacy.inconsistent_count, pinned.inconsistent_count, "{}", kind.name());
            for (a, b) in legacy.blocked.iter().zip(&pinned.blocked) {
                assert_eq!(
                    (&a.g2, a.at, a.heal_at, a.delay_index),
                    (&b.g2, b.at, b.heal_at, b.delay_index)
                );
                assert_eq!(a.verdict, b.verdict);
            }
        }
    }

    #[test]
    fn parallel_schedule_sweep_identical_to_serial() {
        // Determinism on a schedule grid at the kept thread counts.
        let mut grid = SweepGrid::schedule_families(4);
        grid.partition_times = (0..=8).map(|i| i * 500).collect();
        grid.delays =
            vec![DelayModel::Fixed(1000), DelayModel::Uniform { seed: 7, min: 1, max: 1000 }];
        let serial = sweep_serial(ProtocolKind::HuangLi3pc, &grid);
        for threads in [2, 4, 7] {
            let parallel = sweep_with_threads(ProtocolKind::HuangLi3pc, &grid, threads);
            assert_reports_identical(&serial, &parallel);
        }
        assert_eq!(serial.total, grid.size());
    }

    #[test]
    fn pooled_session_sweep_matches_serial_across_grids() {
        // One SessionPool session swept over two different grids (the
        // exp_thm9 pattern) must reproduce the fresh-session reports.
        let mut pool = crate::SessionPool::new();
        let mut dense = SweepGrid::standard(3);
        dense.partition_times = (0..=8).map(|i| i * 500).collect();
        dense.delays = vec![DelayModel::Fixed(1000)];
        let transient = dense.clone().with_transient_heals(2);
        for kind in [ProtocolKind::HuangLi3pc, ProtocolKind::Plain2pc] {
            for grid in [&dense, &transient] {
                let pooled = sweep_with_session(pool.session(kind, 3), grid);
                let fresh = sweep_serial(kind, grid);
                assert_reports_identical(&fresh, &pooled);
            }
        }
        assert_eq!(pool.len(), 2, "one cluster per kind across all four sweeps");
    }

    #[test]
    #[should_panic(expected = "sites")]
    fn pooled_session_sweep_rejects_size_mismatch() {
        let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
        let _ = sweep_with_session(&mut session, &SweepGrid::standard(4));
    }

    #[test]
    fn single_thread_parallel_is_serial() {
        let mut grid = SweepGrid::standard(3);
        grid.partition_times = vec![0, 2500];
        grid.delays = vec![DelayModel::Fixed(1000)];
        let a = sweep_with_threads(ProtocolKind::HuangLi3pc, &grid, 1);
        let b = sweep_serial(ProtocolKind::HuangLi3pc, &grid);
        assert_reports_identical(&b, &a);
    }
}
