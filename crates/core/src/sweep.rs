//! Resilience sweeps: exhaustive grids over partition boundaries, partition
//! instants, heal instants, and delay schedules.
//!
//! This is the experimental engine behind Theorem 9's claim (E10): the
//! paper proves the termination protocol resilient; we *test* it against
//! every simple boundary × a dense grid of partition times × several delay
//! schedules, and report any scenario whose verdict is not
//! all-commit/all-abort. The same engine condemns the baselines (E2, E3,
//! E5) by exhibiting their counterexample scenarios.

use crate::run::run_scenario;
use crate::scenario::{PartitionShape, ProtocolKind, Scenario};
use ptp_protocols::api::Vote;
use ptp_protocols::Verdict;
use ptp_simnet::{DelayModel, PartitionMode, SiteId};

/// Every simple boundary for `n` sites: the non-master group G2 ranges over
/// all non-empty proper subsets of the slaves. (The master defines G1,
/// Sec. 5.2.)
pub fn all_simple_boundaries(n: usize) -> Vec<Vec<SiteId>> {
    let slaves: Vec<SiteId> = (1..n as u16).map(SiteId).collect();
    let mut out = Vec::new();
    // Non-empty subsets of slaves; G2 = subset. G2 = all slaves is allowed
    // (master alone in G1).
    for mask in 1..(1u32 << slaves.len()) {
        let g2: Vec<SiteId> = slaves
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, s)| *s)
            .collect();
        out.push(g2);
    }
    out
}

/// The grid of scenarios a sweep explores.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Cluster size.
    pub n: usize,
    /// G2 groups to try (default: all simple boundaries).
    pub boundaries: Vec<Vec<SiteId>>,
    /// Partition instants in ticks (default: every T/4 from 0 to 8T).
    pub partition_times: Vec<u64>,
    /// Heal delays in ticks after the partition instant (`None` entries mean
    /// a permanent partition).
    pub heals: Vec<Option<u64>>,
    /// Delay models to try.
    pub delays: Vec<DelayModel>,
    /// Vote vectors to try (default: unanimous yes — the interesting case
    /// for partition resilience).
    pub votes: Vec<Vec<Vote>>,
    /// Optimistic or pessimistic undeliverable handling.
    pub mode: PartitionMode,
}

impl SweepGrid {
    /// The default grid for `n` sites with `t_unit = 1000`: all boundaries,
    /// partition times every T/4 up to 8T, permanent partitions, three delay
    /// schedules, unanimous yes.
    pub fn standard(n: usize) -> SweepGrid {
        let t = 1000u64;
        SweepGrid {
            n,
            boundaries: all_simple_boundaries(n),
            partition_times: (0..=32).map(|i| i * t / 4).collect(),
            heals: vec![None],
            delays: vec![
                DelayModel::Fixed(t),
                DelayModel::Fixed(t / 2),
                DelayModel::Uniform { seed: 7, min: 1, max: t },
            ],
            votes: vec![vec![Vote::Yes; n - 1]],
            mode: PartitionMode::Optimistic,
        }
    }

    /// Adds transient-partition cases: heal after each given multiple of
    /// T/2 up to `max_heal_t * 2` steps.
    pub fn with_transient_heals(mut self, max_heal_t: u64) -> SweepGrid {
        self.heals = std::iter::once(None)
            .chain((1..=max_heal_t * 2).map(|i| Some(i * 500)))
            .collect();
        self
    }

    /// Replaces the vote grid.
    pub fn with_votes(mut self, votes: Vec<Vec<Vote>>) -> SweepGrid {
        self.votes = votes;
        self
    }

    /// Switches to the pessimistic (message-loss) model — experiment E12.
    pub fn pessimistic(mut self) -> SweepGrid {
        self.mode = PartitionMode::Pessimistic;
        self
    }

    /// Number of scenarios the grid will run.
    pub fn size(&self) -> usize {
        self.boundaries.len()
            * self.partition_times.len()
            * self.heals.len()
            * self.delays.len()
            * self.votes.len()
    }
}

/// Compact identification of one failing scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioDesc {
    /// The G2 group.
    pub g2: Vec<SiteId>,
    /// Partition instant (ticks).
    pub at: u64,
    /// Heal instant (ticks), if transient.
    pub heal_at: Option<u64>,
    /// Index into the grid's delay list.
    pub delay_index: usize,
    /// Index into the grid's vote list.
    pub vote_index: usize,
    /// The verdict observed.
    pub verdict: Verdict,
}

/// Aggregated sweep results.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Scenarios run.
    pub total: usize,
    /// Scenarios where every site committed.
    pub all_commit: usize,
    /// Scenarios where every site aborted.
    pub all_abort: usize,
    /// Scenarios with undecided sites (first few kept for reporting).
    pub blocked: Vec<ScenarioDesc>,
    /// Scenarios violating atomicity (first few kept for reporting).
    pub inconsistent: Vec<ScenarioDesc>,
    /// Counts beyond the kept examples.
    pub blocked_count: usize,
    /// Counts beyond the kept examples.
    pub inconsistent_count: usize,
}

impl SweepReport {
    /// Resilient on the whole grid: atomic and nonblocking everywhere.
    pub fn fully_resilient(&self) -> bool {
        self.blocked_count == 0 && self.inconsistent_count == 0
    }

    /// Atomicity held everywhere (blocking allowed).
    pub fn fully_atomic(&self) -> bool {
        self.inconsistent_count == 0
    }

    fn record(&mut self, desc: ScenarioDesc) {
        const KEEP: usize = 8;
        self.total += 1;
        match desc.verdict {
            Verdict::AllCommit => self.all_commit += 1,
            Verdict::AllAbort => self.all_abort += 1,
            Verdict::Blocked { .. } => {
                self.blocked_count += 1;
                if self.blocked.len() < KEEP {
                    self.blocked.push(desc);
                }
            }
            Verdict::Inconsistent { .. } => {
                self.inconsistent_count += 1;
                if self.inconsistent.len() < KEEP {
                    self.inconsistent.push(desc);
                }
            }
        }
    }
}

/// Runs `kind` over every scenario in the grid.
pub fn sweep(kind: ProtocolKind, grid: &SweepGrid) -> SweepReport {
    let mut report = SweepReport::default();
    for g2 in &grid.boundaries {
        for &at in &grid.partition_times {
            for &heal in &grid.heals {
                for (delay_index, delay) in grid.delays.iter().enumerate() {
                    for (vote_index, votes) in grid.votes.iter().enumerate() {
                        let mut scenario = Scenario::new(grid.n)
                            .votes(votes.clone())
                            .delay(delay.clone());
                        scenario.mode = grid.mode;
                        scenario.partition = PartitionShape::Simple {
                            g2: g2.clone(),
                            at,
                            heal_at: heal.map(|h| at + h),
                        };
                        let result = run_scenario(kind, &scenario);
                        report.record(ScenarioDesc {
                            g2: g2.clone(),
                            at,
                            heal_at: heal.map(|h| at + h),
                            delay_index,
                            vote_index,
                            verdict: result.verdict,
                        });
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_enumerate_all_slave_subsets() {
        let b = all_simple_boundaries(4);
        // 2^3 - 1 non-empty subsets of {1,2,3}.
        assert_eq!(b.len(), 7);
        assert!(b.contains(&vec![SiteId(3)]));
        assert!(b.contains(&vec![SiteId(1), SiteId(2), SiteId(3)]));
    }

    #[test]
    fn grid_size_is_product() {
        let g = SweepGrid::standard(3);
        let expected = g.boundaries.len()
            * g.partition_times.len()
            * g.heals.len()
            * g.delays.len()
            * g.votes.len();
        assert_eq!(g.size(), expected);
        assert_eq!(g.size(), 297);
    }

    #[test]
    fn huang_li_resilient_on_a_small_grid() {
        // A fast smoke version of E10; the full grid runs in the
        // integration suite and experiment binary.
        let mut grid = SweepGrid::standard(3);
        grid.partition_times = (0..=8).map(|i| i * 500).collect();
        grid.delays = vec![DelayModel::Fixed(1000)];
        let report = sweep(ProtocolKind::HuangLi3pc, &grid);
        assert!(report.fully_resilient(), "{report:?}");
        assert_eq!(report.total, grid.size());
    }

    #[test]
    fn extended_2pc_breaks_somewhere_on_the_grid() {
        // E2: the Sec. 3 observation — some multisite scenario violates
        // atomicity.
        let mut grid = SweepGrid::standard(3);
        grid.partition_times = (0..=16).map(|i| i * 250).collect();
        grid.delays = vec![DelayModel::Fixed(1000)];
        let report = sweep(ProtocolKind::Extended2pc, &grid);
        assert!(!report.fully_atomic(), "E2PC should violate atomicity at n=3");
    }

    #[test]
    fn naive_3pc_breaks_somewhere_on_the_grid() {
        let mut grid = SweepGrid::standard(3);
        grid.partition_times = (0..=16).map(|i| i * 250).collect();
        grid.delays = vec![DelayModel::Fixed(1000)];
        let report = sweep(ProtocolKind::Naive3pc, &grid);
        assert!(!report.fully_atomic(), "naive 3PC should violate atomicity at n=3");
    }

    #[test]
    fn plain_2pc_blocks_on_the_grid() {
        let mut grid = SweepGrid::standard(3);
        grid.partition_times = (0..=8).map(|i| i * 500).collect();
        grid.delays = vec![DelayModel::Fixed(1000)];
        let report = sweep(ProtocolKind::Plain2pc, &grid);
        assert!(report.blocked_count > 0);
        assert!(report.fully_atomic(), "2PC blocks but never lies");
    }
}
