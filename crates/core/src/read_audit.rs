//! Campaign read audits at the database backend.
//!
//! [`Campaign`] sweeps fault timelines against the *protocol* clusters and
//! audits commit atomicity. This module points the same timeline generator
//! at the **database** backend: every sampled timeline is lowered through
//! [`Timeline::db_faults`] onto a [`DbCluster`] serving a seeded mixed
//! read/write workload, and every read the cluster served is audited
//! against the committed-write history — the flat-cluster analogue of
//! `ptp_shard::check_read_history`.
//!
//! The oracle is the same one the shard layer justifies: under strict 2PL
//! every write to a key commits through the master (site 0), so the
//! master's commit instants totally order the key's writes, and a read
//! served at instant `t` must observe the last write committed strictly
//! before `t` (the seed if none) — or any write committing at exactly `t`,
//! which is concurrent with the read and may land on either side of it.
//!
//! Failures shrink over the same candidate space as the protocol campaign
//! (event removal, envelope-fault removal, time halving), with the
//! workload held fixed — the counterexample is a minimal *fault schedule*
//! for the fixed read/write mix.

use crate::campaign::{candidates, Campaign};
use crate::timeline::Timeline;
use ptp_ddb::cluster::{CommitProtocol, DbCluster};
use ptp_ddb::site::{Metrics, ReadSpec, TxnSpec};
use ptp_ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_model::Decision;
use ptp_simnet::rng::SmallRng;
use ptp_simnet::SimTime;
use std::collections::BTreeMap;

/// Read ids live above every write id so the two namespaces cannot
/// collide.
const READ_BASE: u32 = 1000;

/// Shrinker budget: candidate executions per failing timeline.
const SHRINK_BUDGET: usize = 128;

/// The seeded mixed workload a read audit runs under one timeline: a
/// deterministic function of the timeline's seed, so `(seed, index)`
/// replays bit-for-bit.
#[derive(Debug, Clone)]
pub struct ReadWorkload {
    /// Initial `(key, value)` pairs, installed at every site.
    pub seeds: Vec<(Key, Value)>,
    /// Write transactions: `(submit tick, spec)`.
    pub txns: Vec<(u64, TxnSpec)>,
    /// Read transactions: `(submit tick, spec)`.
    pub reads: Vec<(u64, ReadSpec)>,
}

impl ReadWorkload {
    /// Samples the workload for a cluster of `n` sites from `seed`.
    pub fn sample(seed: u64, n: usize) -> ReadWorkload {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_0F4E_AD50_u64.rotate_left(17));
        let keys: Vec<Key> = (0..4).map(|i| Key::from(format!("k{i}"))).collect();
        let seeds: Vec<(Key, Value)> =
            keys.iter().enumerate().map(|(i, k)| (k.clone(), Value::from_u64(i as u64))).collect();

        let txn_count = 1 + rng.gen_range(0..=5) as u32;
        let txns = (0..txn_count)
            .map(|i| {
                let at = rng.gen_range(0..=20_000);
                let mut writes: Vec<WriteOp> = (0..=rng.gen_range(0..=1))
                    .map(|_| WriteOp {
                        key: keys[rng.gen_range(0..=3) as usize].clone(),
                        value: Value::from_u64(1000 * (i as u64 + 1) + rng.gen_range(0..=999)),
                    })
                    .collect();
                writes.sort_by(|a, b| a.key.cmp(&b.key));
                writes.dedup_by(|a, b| a.key == b.key);
                let per_site: BTreeMap<u16, Vec<WriteOp>> =
                    (0..n as u16).map(|s| (s, writes.clone())).collect();
                (at, TxnSpec { id: TxnId(i + 1), writes: per_site })
            })
            .collect();

        let read_count = 2 + rng.gen_range(0..=6) as u32;
        let reads = (0..read_count)
            .map(|i| {
                let at = rng.gen_range(0..=30_000);
                let mut ks: Vec<Key> = (0..=rng.gen_range(0..=1))
                    .map(|_| keys[rng.gen_range(0..=3) as usize].clone())
                    .collect();
                ks.sort();
                ks.dedup();
                (at, ReadSpec { id: TxnId(READ_BASE + i), keys: ks })
            })
            .collect();

        ReadWorkload { seeds, txns, reads }
    }

    /// Builds and runs the cluster under `timeline`'s lowered faults,
    /// returning the run's metrics.
    fn run(&self, protocol: CommitProtocol, timeline: &Timeline) -> Metrics {
        let mut cluster = DbCluster::new(timeline.n, protocol);
        for (key, value) in &self.seeds {
            for site in 0..timeline.n as u16 {
                cluster = cluster.seed(site, key.clone(), value.clone());
            }
        }
        for (at, spec) in &self.txns {
            cluster = cluster.submit(*at, spec.clone());
        }
        for (at, spec) in &self.reads {
            cluster = cluster.submit_read(*at, spec.clone());
        }
        let faults = timeline.db_faults();
        if let Some(p) = faults.partition {
            cluster = cluster.partition(p);
        }
        for f in faults.failures {
            cluster = cluster.fail(f);
        }
        cluster.run().metrics
    }
}

/// Audits every served read in `metrics` against the committed-write
/// history. Returns one message per violating `(read, key)` observation.
pub fn read_history_violations(workload: &ReadWorkload, metrics: &Metrics) -> Vec<String> {
    // Per-key committed-write history, ordered by the master's (site 0's)
    // commit instant — the key's linearization points under strict 2PL.
    let mut history: BTreeMap<&Key, Vec<(SimTime, &Value)>> = BTreeMap::new();
    for (_, spec) in &workload.txns {
        let Some(&(Decision::Commit, at)) =
            metrics.decisions.get(&spec.id).and_then(|per| per.get(&0))
        else {
            continue;
        };
        // Last write wins within one transaction's write set.
        let mut last: BTreeMap<&Key, &Value> = BTreeMap::new();
        for w in spec.writes.get(&0).into_iter().flatten() {
            last.insert(&w.key, &w.value);
        }
        for (key, value) in last {
            history.entry(key).or_default().push((at, value));
        }
    }
    for writes in history.values_mut() {
        writes.sort_by_key(|(at, _)| *at);
    }

    let mut violations = Vec::new();
    for record in &metrics.reads {
        for (key, observed) in &record.values {
            let writes = history.get(key).map(Vec::as_slice).unwrap_or(&[]);
            let latest =
                writes.iter().rev().find(|(at, _)| *at < record.at).map(|(_, v)| *v).or_else(
                    || workload.seeds.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
                );
            let admissible: Vec<Option<&Value>> = latest
                .into_iter()
                .map(Some)
                .chain(writes.iter().filter(|(at, _)| *at == record.at).map(|(_, v)| Some(*v)))
                .collect();
            let admissible = if admissible.is_empty() { vec![None] } else { admissible };
            if !admissible.contains(&observed.as_ref()) {
                violations.push(format!(
                    "read {:?} at {:?} (site {:?}, {:?} path) observed {observed:?} for key {key:?}; admissible: {admissible:?}",
                    record.id, record.at, record.site, record.path,
                ));
            }
        }
    }
    violations
}

/// One read-audit failure: the timeline that tripped the oracle, shrunk.
#[derive(Debug, Clone)]
pub struct ReadAuditFailure {
    /// Which sampled timeline failed.
    pub index: usize,
    /// Its derived seed.
    pub seed: u64,
    /// The first violation message of the original run.
    pub message: String,
    /// The timeline as sampled.
    pub original: Timeline,
    /// The still-failing minimal counterexample (same workload).
    pub minimal: Timeline,
}

/// What [`Campaign::run_db_read_audit`] produced.
#[derive(Debug)]
pub struct ReadAuditReport {
    /// Timelines sampled and executed.
    pub executed: usize,
    /// Reads audited across all runs (served reads × observed keys).
    pub reads_checked: usize,
    /// Every read-history failure, shrunk.
    pub failures: Vec<ReadAuditFailure>,
}

impl ReadAuditReport {
    /// True when every served read linearized.
    pub fn all_green(&self) -> bool {
        self.failures.is_empty()
    }
}

impl Campaign {
    /// Runs the campaign's timelines against the **database backend**: each
    /// timeline is lowered via [`Timeline::db_faults`] onto a [`DbCluster`]
    /// serving a seeded mixed read/write workload ([`ReadWorkload::sample`]
    /// keyed by the timeline seed), and every served read is audited
    /// against the committed-write history
    /// ([`read_history_violations`]). Failures shrink the fault schedule
    /// with the workload held fixed.
    ///
    /// Degrade windows and envelope faults are dropped by the lowering —
    /// use a config that samples partitions and crashes only if every
    /// sampled fault should reach the cluster.
    pub fn run_db_read_audit(&self, protocol: CommitProtocol) -> ReadAuditReport {
        let config = self.config();
        let mut failures = Vec::new();
        let mut reads_checked = 0usize;
        for index in 0..config.timelines {
            let seed = self.timeline_seed(index);
            let timeline = self.timeline(index);
            let workload = ReadWorkload::sample(seed, config.n);
            let metrics = workload.run(protocol, &timeline);
            reads_checked += metrics.reads.iter().map(|r| r.values.len()).sum::<usize>();
            let violations = read_history_violations(&workload, &metrics);
            if let Some(message) = violations.into_iter().next() {
                let minimal = shrink_db(&workload, protocol, timeline.clone());
                failures.push(ReadAuditFailure {
                    index,
                    seed,
                    message,
                    original: timeline,
                    minimal,
                });
            }
        }
        ReadAuditReport { executed: config.timelines, reads_checked, failures }
    }
}

/// Greedy restart-on-improvement shrinking over the campaign's candidate
/// space, re-judged by the read-history oracle.
fn shrink_db(workload: &ReadWorkload, protocol: CommitProtocol, original: Timeline) -> Timeline {
    let mut minimal = original;
    let mut tested = 0usize;
    'passes: loop {
        for candidate in candidates(&minimal) {
            if tested >= SHRINK_BUDGET {
                break 'passes;
            }
            tested += 1;
            let metrics = workload.run(protocol, &candidate);
            if !read_history_violations(workload, &metrics).is_empty() {
                minimal = candidate;
                continue 'passes;
            }
        }
        break;
    }
    minimal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::scenario::ProtocolKind;

    /// Partitions + crashes only: the fault family the database lowering
    /// carries in full.
    fn db_config(timelines: usize, seed: u64) -> CampaignConfig {
        let mut config = CampaignConfig::safe(ProtocolKind::HuangLi3pc, 4, timelines, seed);
        config.crashes = true;
        config.degrades = false;
        config.duplicates = false;
        config
    }

    #[test]
    fn workload_sampling_is_deterministic() {
        let a = ReadWorkload::sample(42, 4);
        let b = ReadWorkload::sample(42, 4);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = ReadWorkload::sample(43, 4);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn safe_family_timelines_keep_every_served_read_linearizable() {
        for protocol in
            [CommitProtocol::TwoPhase, CommitProtocol::HuangLi, CommitProtocol::QuorumMajority]
        {
            let campaign = Campaign::new(db_config(15, 0xDBA_0D17));
            let report = campaign.run_db_read_audit(protocol);
            assert_eq!(report.executed, 15);
            assert!(report.all_green(), "{protocol:?}: {:#?}", report.failures);
            assert!(report.reads_checked > 0, "{protocol:?}: the audit must see served reads");
        }
    }

    #[test]
    fn a_doctored_history_trips_the_oracle() {
        // The checker itself must not be vacuous: serve a read, then claim
        // a value no linearization admits.
        let campaign = Campaign::new(db_config(8, 7));
        let workload = ReadWorkload::sample(campaign.timeline_seed(0), 4);
        let timeline = campaign.timeline(0);
        let mut metrics = workload.run(CommitProtocol::HuangLi, &timeline);
        let Some(record) = metrics.reads.first_mut() else {
            return; // this seed served no reads; the sweep test covers the rest
        };
        for (_, observed) in &mut record.values {
            *observed = Some(Value::from_u64(0xBAD_FACE));
        }
        assert!(!read_history_violations(&workload, &metrics).is_empty());
    }
}
