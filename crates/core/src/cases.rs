//! The Sec. 6 transient-partitioning case analysis, as an executable
//! classifier.
//!
//! The paper enumerates what can happen when a simple partition strikes a
//! three-phase commit in flight, by which messages manage to cross the
//! boundary B:
//!
//! ```text
//! (1)      no prepare passes B                                  wait ≤ —
//! (2)      some, not all, prepares pass B
//!   (2.1)    some acks (from prepared G2 slaves) do not pass     ≤ T
//!   (2.2)    all those acks pass
//!     (2.2.1)  some probes do not pass                           ≤ 4T
//!     (2.2.2)  all probes pass                                   ≤ 5T
//! (3)      all prepares pass B
//!   (3.1)    some acks do not pass                               ≤ T
//!   (3.2)    all acks pass
//!     (3.2.1)  all commits pass                                  (normal)
//!     (3.2.2)  some commits do not pass
//!       (3.2.2.1) some probes (from commit-less G2 slaves) miss  ≤ 4T
//!       (3.2.2.2) all those probes pass                          ∞ → 5T rule
//! ```
//!
//! The waits are the longest time a slave can spend after timing out in `p`
//! before it receives an `UD(probe)`, a commit, or an abort. Case 3.2.2.2
//! is unbounded under the Sec. 5 protocol — which is exactly why Sec. 6 adds
//! the 5T-then-commit rule. Experiment E9 sweeps transient partitions,
//! classifies each run with [`classify`], and reports the measured maxima
//! next to the paper's bounds.

use ptp_simnet::{SiteId, Trace, TraceEvent};

/// The Sec. 6 case labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // names mirror the paper's numbering
pub enum TransientCase {
    Case1,
    Case2_1,
    Case2_2_1,
    Case2_2_2,
    Case3_1,
    Case3_2_1,
    Case3_2_2_1,
    Case3_2_2_2,
    /// The partition struck before any prepare existed (pure phase-1) or
    /// after every commit was delivered — outside the Sec. 6 tree.
    OutsideTree,
}

impl TransientCase {
    /// The paper's stated bound on the post-`p`-timeout wait, in units of
    /// `T` (`None` = unbounded under the Sec. 5 protocol; the Sec. 6 rule
    /// turns it into a 5T commit).
    pub fn paper_bound_t(self) -> Option<u64> {
        match self {
            TransientCase::Case2_1 | TransientCase::Case3_1 => Some(1),
            TransientCase::Case2_2_1 | TransientCase::Case3_2_2_1 => Some(4),
            TransientCase::Case2_2_2 => Some(5),
            TransientCase::Case3_2_2_2 => None,
            TransientCase::Case1 | TransientCase::Case3_2_1 | TransientCase::OutsideTree => Some(0),
        }
    }

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            TransientCase::Case1 => "1",
            TransientCase::Case2_1 => "2.1",
            TransientCase::Case2_2_1 => "2.2.1",
            TransientCase::Case2_2_2 => "2.2.2",
            TransientCase::Case3_1 => "3.1",
            TransientCase::Case3_2_1 => "3.2.1",
            TransientCase::Case3_2_2_1 => "3.2.2.1",
            TransientCase::Case3_2_2_2 => "3.2.2.2",
            TransientCase::OutsideTree => "-",
        }
    }
}

/// Message bookkeeping for one run, relative to a boundary.
#[derive(Debug, Default, Clone)]
struct Crossings {
    prepares_to_g2: usize,
    prepares_to_g2_delivered: usize,
    acks_from_prepared_g2: usize,
    acks_from_prepared_g2_delivered: usize,
    commits_master_to_g2: usize,
    commits_master_to_g2_delivered: usize,
    probes_from_g2: usize,
    probes_from_g2_delivered: usize,
    /// G2 slaves that received a master commit.
    g2_with_commit: Vec<SiteId>,
}

/// Classifies a finished run against the Sec. 6 tree.
///
/// `g2` is the non-master partition group. The trace must come from a
/// 3PC-shaped protocol (message kinds `prepare`, `ack`, `commit`, `probe`).
pub fn classify(trace: &Trace, g2: &[SiteId]) -> TransientCase {
    let is_g2 = |s: SiteId| g2.contains(&s);
    let mut x = Crossings::default();
    let mut prepared_g2: Vec<SiteId> = Vec::new();

    for ev in trace.events() {
        match *ev {
            TraceEvent::Sent { src, dst, kind, .. } => match kind {
                "prepare" if src == SiteId(0) && is_g2(dst) => x.prepares_to_g2 += 1,
                "probe" if is_g2(src) => x.probes_from_g2 += 1,
                "commit" if src == SiteId(0) && is_g2(dst) => x.commits_master_to_g2 += 1,
                "ack" if is_g2(src) => x.acks_from_prepared_g2 += 1,
                _ => {}
            },
            TraceEvent::Delivered { src, dst, kind, .. } => match kind {
                "prepare" if src == SiteId(0) && is_g2(dst) => {
                    x.prepares_to_g2_delivered += 1;
                    prepared_g2.push(dst);
                }
                "probe" if is_g2(src) && dst == SiteId(0) => x.probes_from_g2_delivered += 1,
                "commit" if src == SiteId(0) && is_g2(dst) => {
                    x.commits_master_to_g2_delivered += 1;
                    x.g2_with_commit.push(dst);
                }
                "ack" if is_g2(src) && dst == SiteId(0) => x.acks_from_prepared_g2_delivered += 1,
                _ => {}
            },
            _ => {}
        }
    }

    if x.prepares_to_g2 == 0 {
        return TransientCase::OutsideTree; // partition preceded phase 2
    }
    if x.prepares_to_g2_delivered == 0 {
        return TransientCase::Case1;
    }

    let all_prepares_passed = x.prepares_to_g2_delivered == x.prepares_to_g2;
    let all_acks_passed = x.acks_from_prepared_g2_delivered == x.acks_from_prepared_g2;
    let all_probes_passed = x.probes_from_g2_delivered == x.probes_from_g2;

    if !all_prepares_passed {
        // Case 2: some prepares crossed, some did not.
        if !all_acks_passed {
            TransientCase::Case2_1
        } else if !all_probes_passed {
            TransientCase::Case2_2_1
        } else {
            TransientCase::Case2_2_2
        }
    } else {
        // Case 3: every prepare crossed.
        if !all_acks_passed {
            TransientCase::Case3_1
        } else if x.commits_master_to_g2 > 0
            && x.commits_master_to_g2_delivered == x.commits_master_to_g2
        {
            TransientCase::Case3_2_1
        } else {
            // Some commits did not cross. Distinguish by the probes of the
            // commit-less G2 slaves.
            let commit_less_probes_missing = trace.events().iter().any(|ev| {
                matches!(*ev,
                    TraceEvent::Returned { src, kind: "probe", .. }
                        if g2.contains(&src) && !x.g2_with_commit.contains(&src))
            });
            if commit_less_probes_missing {
                TransientCase::Case3_2_2_1
            } else {
                TransientCase::Case3_2_2_2
            }
        }
    }
}

/// The longest wait, across G2... across *all* slaves, between timing out in
/// `p` (trace note `slave-timeout-p`) and the next terminating stimulus
/// (commit/abort delivery, probe return, or the 5T rule firing), in ticks.
/// Returns `None` if no slave timed out in `p`.
pub fn max_wait_after_p_timeout(trace: &Trace, n: usize) -> Option<u64> {
    let mut max: Option<u64> = None;
    for site in 1..n as u16 {
        let site = SiteId(site);
        let Some((timeout_at, _)) = trace.first_note(site, "slave-timeout-p") else {
            continue;
        };
        // The terminating stimulus: first of commit/abort delivered to the
        // site, UD(probe) returned to it, or its pwait-commit note.
        let mut candidates: Vec<u64> = Vec::new();
        for ev in trace.events() {
            match *ev {
                TraceEvent::Delivered { at, dst, kind, .. }
                    if dst == site && (kind == "commit" || kind == "abort") && at >= timeout_at =>
                {
                    candidates.push(at.ticks());
                }
                TraceEvent::Returned { at, src, kind: "probe", .. }
                    if src == site && at >= timeout_at =>
                {
                    candidates.push(at.ticks());
                }
                TraceEvent::Note { at, site: s, label: "slave-pwait-commit", .. }
                    if s == site && at >= timeout_at =>
                {
                    candidates.push(at.ticks());
                }
                _ => {}
            }
        }
        if let Some(first) = candidates.into_iter().min() {
            let wait = first - timeout_at.ticks();
            max = Some(max.map_or(wait, |m: u64| m.max(wait)));
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::ScenarioResult;
    use crate::scenario::{ProtocolKind, Scenario};
    use crate::session::SessionPool;
    use ptp_protocols::RunOptions;

    /// Classifier runs all go through one shared cluster: the pool hands
    /// back the `(HuangLi3pc, n)` session for every scenario.
    fn recorded(pool: &mut SessionPool, s: &Scenario) -> ScenarioResult {
        pool.session(ProtocolKind::HuangLi3pc, s.n).run_with(s, &RunOptions::recording())
    }

    #[test]
    fn paper_bounds_table() {
        assert_eq!(TransientCase::Case2_1.paper_bound_t(), Some(1));
        assert_eq!(TransientCase::Case2_2_1.paper_bound_t(), Some(4));
        assert_eq!(TransientCase::Case2_2_2.paper_bound_t(), Some(5));
        assert_eq!(TransientCase::Case3_1.paper_bound_t(), Some(1));
        assert_eq!(TransientCase::Case3_2_2_1.paper_bound_t(), Some(4));
        assert_eq!(TransientCase::Case3_2_2_2.paper_bound_t(), None);
    }

    #[test]
    fn labels_match_paper_numbering() {
        assert_eq!(TransientCase::Case3_2_2_2.label(), "3.2.2.2");
        assert_eq!(TransientCase::Case1.label(), "1");
    }

    #[test]
    fn classifier_cases_over_one_shared_cluster() {
        // One pooled session serves every classifier run in sequence; the
        // cases must come out exactly as they did from one-shot clusters.
        let mut pool = SessionPool::new();

        // Partition at t=0: no prepare was ever sent.
        let s = Scenario::new(3).partition_g2(vec![ptp_simnet::SiteId(2)], 0);
        let r = recorded(&mut pool, &s);
        assert_eq!(classify(&r.trace, &[ptp_simnet::SiteId(2)]), TransientCase::OutsideTree);

        // With fixed delay T: xact 0..1T, yes 1T..2T, prepares sent at 2T
        // arriving at 3T. Partition at 2.5T catches the G2 prepare
        // mid-flight: it bounces and no prepare crosses B.
        let s = Scenario::new(3).partition_g2(vec![ptp_simnet::SiteId(2)], 2500);
        let r = recorded(&mut pool, &s);
        assert_eq!(classify(&r.trace, &[ptp_simnet::SiteId(2)]), TransientCase::Case1);
        assert!(r.verdict.is_resilient());

        // Partition just after commits went out at 4T: commit to G2 is
        // mid-flight and bounces -> case 3.2.2.x.
        let s = Scenario::new(3).partition_g2(vec![ptp_simnet::SiteId(2)], 4500);
        let r = recorded(&mut pool, &s);
        let case = classify(&r.trace, &[ptp_simnet::SiteId(2)]);
        assert!(
            matches!(case, TransientCase::Case3_2_2_1 | TransientCase::Case3_2_2_2),
            "got {case:?}"
        );
        assert!(r.verdict.is_resilient());

        assert_eq!(pool.len(), 1, "every run shared the one cluster");
    }

    #[test]
    fn p_timeout_wait_measured_when_present() {
        let mut pool = SessionPool::new();
        let s = Scenario::new(3).partition_g2(vec![ptp_simnet::SiteId(2)], 4500);
        let r = recorded(&mut pool, &s);
        let wait = max_wait_after_p_timeout(&r.trace, 3);
        assert!(wait.is_some());
        // Sec. 6: never more than 5T.
        assert!(wait.unwrap() <= 5000, "wait {wait:?} exceeds 5T");
    }
}
