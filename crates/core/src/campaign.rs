//! Randomized chaos campaigns over the timeline DSL.
//!
//! A campaign samples many [`Timeline`]s from a seeded generator, executes
//! each through the simulator backend, audits the result (atomicity by
//! default), and **shrinks** every failing timeline to a minimal
//! counterexample — the property-testing loop of `crates/proptest`,
//! specialized to fault schedules.
//!
//! Everything is deterministic from the campaign seed: timeline `i` of a
//! campaign is always the same [`Timeline`] (see [`Campaign::timeline`]),
//! so a failure report's `(seed, index)` pair replays bit-for-bit.
//!
//! The default fault family is chosen to stay inside the paper's model
//! for the Huang–Li protocols: two-group partitions with heals and
//! degraded-delay windows (delays still bounded by `T`). Site crashes are
//! opt-in ([`CampaignConfig::crashes`]) and sampled only while no
//! partition is open, because crash *during* partition is the paper's own
//! Sec. 7 impossibility — a known atomicity violation, not a bug.
//!
//! # Examples
//!
//! ```
//! use ptp_core::{Campaign, CampaignConfig, ProtocolKind};
//!
//! let config = CampaignConfig::safe(ProtocolKind::HuangLi3pc, 4, 25, 0xC0FFEE);
//! let report = Campaign::new(config).run();
//! assert_eq!(report.executed, 25);
//! assert!(report.all_green(), "{:?}", report.failures);
//! ```

use crate::run::ScenarioResult;
use crate::scenario::ProtocolKind;
use crate::session::Session;
use crate::timeline::{ScenarioBuilder, TimedEvent, Timeline};
use ptp_obs::{FlightEvent, FlightRecorder};
use ptp_protocols::RunOptions;
use ptp_simnet::rng::SmallRng;
use ptp_simnet::{EnvelopeMatch, SiteId, TraceEvent};

/// What a [`Campaign`] samples and how much of it.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The protocol under test.
    pub kind: ProtocolKind,
    /// Cluster size.
    pub n: usize,
    /// How many timelines to sample and execute.
    pub timelines: usize,
    /// The campaign seed; every timeline derives deterministically from it.
    pub seed: u64,
    /// Maximum timed events per sampled timeline.
    pub max_events: usize,
    /// Sample two-group partition/heal episodes.
    pub partitions: bool,
    /// Sample slave crash/recover pairs (only while no partition is open —
    /// crash during partition is the paper's Sec. 7 impossibility).
    pub crashes: bool,
    /// Sample degraded-delay windows (bands stay within `T`).
    pub degrades: bool,
    /// Sample envelope-duplication faults.
    pub duplicates: bool,
}

impl CampaignConfig {
    /// The model-respecting fault family: partitions, heals, degrades and
    /// envelope duplicates — everything the Huang–Li protocols are designed
    /// to survive, so an audited failure is a real finding.
    pub fn safe(kind: ProtocolKind, n: usize, timelines: usize, seed: u64) -> CampaignConfig {
        CampaignConfig {
            kind,
            n,
            timelines,
            seed,
            max_events: 6,
            partitions: true,
            crashes: false,
            degrades: true,
            duplicates: true,
        }
    }
}

/// One audited failure: the sampled timeline that tripped the audit and
/// the minimal counterexample shrinking reduced it to.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// Which sampled timeline failed.
    pub index: usize,
    /// Its derived seed (replay with [`Campaign::timeline`] or directly).
    pub seed: u64,
    /// The audit's violation message for the *original* timeline.
    pub message: String,
    /// The timeline as sampled.
    pub original: Timeline,
    /// The still-failing minimal counterexample.
    pub minimal: Timeline,
    /// Accepted shrinking steps.
    pub shrink_steps: usize,
    /// Candidate executions the shrinker spent.
    pub shrink_tested: usize,
    /// Flight-recorder dump of the minimal counterexample's event tail:
    /// the minimal timeline is replayed once in recording mode and the
    /// last [`FLIGHT_TAIL`] network/fault events are rendered in the same
    /// JSON dump format the live stack emits on audit failure.
    pub flight: String,
}

impl CampaignFailure {
    /// Renders the failure for a human: the violation, the minimal
    /// counterexample timeline, and the flight-recorder tail of its
    /// replay — everything needed to understand the finding without
    /// re-running the campaign.
    pub fn render(&self) -> String {
        format!(
            "timeline {} (seed {:#x}): {}\nminimal counterexample ({} shrink step(s), \
             {} candidate(s) tested):\n{:#?}\nflight recorder:\n{}",
            self.index,
            self.seed,
            self.message,
            self.shrink_steps,
            self.shrink_tested,
            self.minimal,
            self.flight,
        )
    }
}

/// What a [`Campaign::run`] produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// Timelines sampled and executed.
    pub executed: usize,
    /// Every audited failure, shrunk.
    pub failures: Vec<CampaignFailure>,
}

impl CampaignReport {
    /// True when no timeline tripped the audit.
    pub fn all_green(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of distinct failing timelines found.
    pub fn faults_found(&self) -> usize {
        self.failures.len()
    }
}

/// Shrinker budget: candidate executions per failing timeline.
const SHRINK_BUDGET: usize = 256;

/// How many trailing events of the minimal counterexample's replay the
/// flight dump keeps.
pub const FLIGHT_TAIL: usize = 64;

/// A seeded chaos campaign. See the module docs.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// A campaign over `config`.
    pub fn new(config: CampaignConfig) -> Campaign {
        assert!(config.n >= 2 && config.timelines >= 1);
        Campaign { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The seed timeline `index` is sampled from — a pure function of the
    /// campaign seed, so reports replay deterministically.
    pub fn timeline_seed(&self, index: usize) -> u64 {
        self.config.seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Samples timeline `index` (deterministic replay: the same campaign
    /// always yields the same timeline at the same index).
    pub fn timeline(&self, index: usize) -> Timeline {
        let cfg = &self.config;
        let mut rng = SmallRng::seed_from_u64(self.timeline_seed(index));
        let mut b = ScenarioBuilder::new(cfg.n);
        let mut t: u64 = 0;
        let mut partition_open = false;
        // Theorem 9 restricts itself to *simple* partitioning: one
        // two-group episode. Re-splitting after a heal is the
        // `multiple_partitioning_breaks_the_termination_protocol` territory
        // of `exp_multi_partition`, a documented non-guarantee — the safe
        // family samples at most one episode per timeline.
        let mut partition_used = false;
        let mut crashed: Option<SiteId> = None;
        let slots = rng.gen_range(0..=cfg.max_events as u64);
        for _ in 0..slots {
            t += rng.gen_range(400..=2600);
            match rng.gen_range(0..=3) {
                0 if cfg.partitions => {
                    if partition_open {
                        b = b.at(t).heal();
                        partition_open = false;
                    } else if crashed.is_none() && !partition_used {
                        b = b.at(t).partition(self.sample_groups(&mut rng));
                        partition_open = true;
                        partition_used = true;
                    }
                }
                1 if cfg.crashes => match crashed {
                    // Crash only in full connectivity (see the module docs)
                    // and recover before any later partition can overlap.
                    None if !partition_open => {
                        let site = SiteId(rng.gen_range(1..=(cfg.n - 1) as u64) as u16);
                        b = b.at(t).crash(site);
                        crashed = Some(site);
                    }
                    Some(site) if !partition_open => {
                        b = b.at(t).recover(site);
                        crashed = None;
                    }
                    _ => {}
                },
                2 if cfg.degrades => {
                    let min = rng.gen_range(1..=900);
                    let max = rng.gen_range(min..=1000);
                    b = b.at(t).degrade(min..=max);
                }
                3 if cfg.duplicates => {
                    const KINDS: [&str; 5] = ["xact", "yes", "prepare", "ack", "commit"];
                    let kind = KINDS[rng.gen_range(0..=(KINDS.len() - 1) as u64) as usize];
                    let after = rng.gen_range(100..=1500);
                    b = b.duplicate(EnvelopeMatch::kind(kind), after);
                }
                _ => {} // the sampled fault class is disabled: empty slot
            }
        }
        // A crashed site that never recovers and never partitions is fine;
        // an open partition is a permanent split — both valid timelines.
        b.build()
    }

    /// Runs the campaign with the default atomicity audit: any
    /// `Verdict::Inconsistent` outcome is a failure.
    pub fn run(&self) -> CampaignReport {
        self.run_with(|result| {
            (!result.verdict.is_atomic()).then(|| format!("{:?}", result.verdict))
        })
    }

    /// Runs the campaign with a custom audit: `audit` returns a violation
    /// message for a failing run, `None` for a clean one. Every failure is
    /// shrunk (event removal, envelope-fault removal, time halving) until
    /// no smaller timeline still trips the audit or the budget runs out.
    pub fn run_with<F>(&self, mut audit: F) -> CampaignReport
    where
        F: FnMut(&ScenarioResult) -> Option<String>,
    {
        let mut session = Session::new(self.config.kind, self.config.n);
        let mut failures = Vec::new();
        for index in 0..self.config.timelines {
            let timeline = self.timeline(index);
            let result = session.run(&timeline.scenario());
            if let Some(message) = audit(&result) {
                let (minimal, shrink_steps, shrink_tested) =
                    shrink(&mut session, &mut audit, timeline.clone());
                let reason = format!(
                    "campaign counterexample (timeline {index}, seed {:#x}): {message}",
                    self.timeline_seed(index)
                );
                let flight = counterexample_flight(&mut session, &minimal, &reason);
                failures.push(CampaignFailure {
                    index,
                    seed: self.timeline_seed(index),
                    message,
                    original: timeline,
                    minimal,
                    shrink_steps,
                    shrink_tested,
                    flight,
                });
            }
        }
        CampaignReport { executed: self.config.timelines, failures }
    }

    /// Two-group cover of the cluster: a random nonempty set of slaves
    /// secedes, everyone else (always including the master) stays.
    fn sample_groups(&self, rng: &mut SmallRng) -> Vec<Vec<SiteId>> {
        let n = self.config.n as u16;
        let mut g2: Vec<SiteId> =
            (1..n).map(SiteId).filter(|_| rng.gen_range(0..=1) == 1).collect();
        if g2.is_empty() {
            g2.push(SiteId(rng.gen_range(1..=(n - 1) as u64) as u16));
        }
        let g1 = (0..n).map(SiteId).filter(|s| !g2.contains(s)).collect();
        vec![g1, g2]
    }
}

/// Replays the minimal counterexample with a recording trace and renders
/// the last [`FLIGHT_TAIL`] network/fault events as a flight-recorder
/// dump — the same format the live stack prints on audit failure, so one
/// set of eyes (and one set of parsing scripts) reads both.
fn counterexample_flight(session: &mut Session, minimal: &Timeline, reason: &str) -> String {
    let result = session.run_with(&minimal.scenario(), &RunOptions::recording());
    let events: Vec<FlightEvent> = result.trace.events().iter().filter_map(flight_event).collect();
    let keep = events.len().min(FLIGHT_TAIL);
    let dropped = (events.len() - keep) as u64;
    FlightRecorder::render_dump(reason, dropped, &events[events.len() - keep..])
}

/// Projects a simulator [`TraceEvent`] onto the flight-recorder event
/// shape. Timer bookkeeping (set / cancel / suppress) is elided — the
/// tail exists to show *what the network did*, and timer arms would crowd
/// out the deliveries that explain a verdict. `at_us` carries simulated
/// time units (the simulator's tick), not wall-clock microseconds.
fn flight_event(e: &TraceEvent) -> Option<FlightEvent> {
    let ev = |at: ptp_simnet::SimTime, site: u64, kind, tag, a, b| {
        Some(FlightEvent { at_us: at.0, site, kind, tag, a, b })
    };
    match *e {
        TraceEvent::Sent { at, id, src, dst, kind } => {
            ev(at, src.0 as u64, "send", kind, id.0, dst.0 as u64)
        }
        TraceEvent::Delivered { at, id, src, dst, kind } => {
            ev(at, dst.0 as u64, "recv", kind, id.0, src.0 as u64)
        }
        TraceEvent::Returned { at, id, src, dst, kind } => {
            ev(at, src.0 as u64, "return", kind, id.0, dst.0 as u64)
        }
        TraceEvent::Dropped { at, id, src, dst, kind } => {
            ev(at, dst.0 as u64, "drop", kind, id.0, src.0 as u64)
        }
        TraceEvent::TimerFired { at, site, timer, tag } => {
            ev(at, site.0 as u64, "timer", "fire", timer, tag)
        }
        TraceEvent::Crashed { at, site } => ev(at, site.0 as u64, "fault", "crash", 0, 0),
        TraceEvent::Recovered { at, site } => ev(at, site.0 as u64, "fault", "recover", 0, 0),
        TraceEvent::Note { at, site, label, detail } => {
            ev(at, site.0 as u64, "note", label, detail, 0)
        }
        TraceEvent::TimerSet { .. }
        | TraceEvent::TimerCancelled { .. }
        | TraceEvent::TimerSuppressed { .. } => None,
    }
}

/// Greedy restart-on-improvement shrinking, mirroring the loop in
/// `crates/proptest`: try every candidate; the first one that still fails
/// becomes the new minimum and the pass restarts.
fn shrink<F>(session: &mut Session, audit: &mut F, original: Timeline) -> (Timeline, usize, usize)
where
    F: FnMut(&ScenarioResult) -> Option<String>,
{
    let mut minimal = original;
    let mut steps = 0usize;
    let mut tested = 0usize;
    'passes: loop {
        for candidate in candidates(&minimal) {
            if tested >= SHRINK_BUDGET {
                break 'passes;
            }
            tested += 1;
            let result = session.run(&candidate.scenario());
            if audit(&result).is_some() {
                minimal = candidate;
                steps += 1;
                continue 'passes;
            }
        }
        break;
    }
    (minimal, steps, tested)
}

/// Strictly-smaller mutations of `timeline`, invalid ones discarded via
/// [`Timeline::try_new`]: drop one envelope fault, drop one event, halve
/// every event instant. Shared with the database-backend read audit
/// (`crate::read_audit`), which shrinks over the same candidate space.
pub(crate) fn candidates(timeline: &Timeline) -> Vec<Timeline> {
    let mut out = Vec::new();
    let mut push = |events: Vec<TimedEvent>, env_faults| {
        if let Ok(t) =
            Timeline::try_new(timeline.n, timeline.t_unit, timeline.horizon_t, events, env_faults)
        {
            out.push(t);
        }
    };
    for i in 0..timeline.env_faults.len() {
        let mut env = timeline.env_faults.clone();
        env.remove(i);
        push(timeline.events.clone(), env);
    }
    for i in 0..timeline.events.len() {
        let mut events = timeline.events.clone();
        events.remove(i);
        push(events, timeline.env_faults.clone());
    }
    if timeline.events.iter().any(|e| e.at > 1) {
        let halved = timeline
            .events
            .iter()
            .map(|e| TimedEvent { at: e.at / 2, event: e.event.clone() })
            .collect();
        push(halved, timeline.env_faults.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_deterministic() {
        let c = Campaign::new(CampaignConfig::safe(ProtocolKind::HuangLi3pc, 4, 10, 42));
        for i in 0..10 {
            assert_eq!(c.timeline(i), c.timeline(i), "timeline {i}");
        }
        let again = Campaign::new(CampaignConfig::safe(ProtocolKind::HuangLi3pc, 4, 10, 42));
        assert_eq!(c.timeline(3), again.timeline(3));
    }

    #[test]
    fn different_seeds_sample_different_timelines() {
        let a = Campaign::new(CampaignConfig::safe(ProtocolKind::HuangLi3pc, 4, 1, 1));
        let b = Campaign::new(CampaignConfig::safe(ProtocolKind::HuangLi3pc, 4, 1, 2));
        let differ = (0..16).any(|i| a.timeline(i) != b.timeline(i));
        assert!(differ, "16 consecutive identical timelines across seeds");
    }

    #[test]
    fn sampled_timelines_always_validate() {
        // build() inside timeline() would panic on an invalid schedule; a
        // broad sweep over seeds and configs is the regression net.
        for seed in 0..40 {
            let mut cfg = CampaignConfig::safe(ProtocolKind::HuangLi3pc, 5, 1, seed);
            cfg.crashes = true;
            let c = Campaign::new(cfg);
            for i in 0..4 {
                let tl = c.timeline(i);
                assert!(tl.events.len() <= 6 + tl.env_faults.len());
            }
        }
    }

    #[test]
    fn blocking_protocol_fails_and_shrinks_to_a_minimal_counterexample() {
        // 2PC blocks under any mid-protocol partition (the paper's Sec. 1
        // story), so a resilience audit is a known-failing oracle: the
        // campaign must find failures AND shrink them below the originals.
        let config = CampaignConfig::safe(ProtocolKind::Plain2pc, 4, 30, 7);
        let report = Campaign::new(config)
            .run_with(|r| (!r.verdict.is_resilient()).then(|| format!("{:?}", r.verdict)));
        assert!(!report.all_green(), "2PC must block somewhere in 30 timelines");
        let f = report.failures.iter().find(|f| f.shrink_steps > 0).expect("some failure shrinks");
        assert!(f.minimal.events.len() <= f.original.events.len());
        let weight = |t: &Timeline| {
            t.events.len()
                + t.env_faults.len()
                + t.events.iter().map(|e| e.at as usize).sum::<usize>()
        };
        assert!(weight(&f.minimal) < weight(&f.original), "shrinking must reduce the timeline");
        // The minimal counterexample still fails its own audit.
        let result = crate::run::run_scenario(ProtocolKind::Plain2pc, &f.minimal.scenario());
        assert!(!result.verdict.is_resilient(), "{:?}", result.verdict);
    }

    #[test]
    fn counterexample_carries_a_flight_dump() {
        // Every shrunk counterexample replays its minimal timeline and
        // keeps the event tail — the campaign-side half of the "both
        // failure paths produce a flight dump" guarantee (the live stack's
        // audit/drain path is pinned in `ptp-live`).
        let config = CampaignConfig::safe(ProtocolKind::Plain2pc, 4, 30, 7);
        let report = Campaign::new(config)
            .run_with(|r| (!r.verdict.is_resilient()).then(|| format!("{:?}", r.verdict)));
        assert!(!report.all_green(), "2PC must block somewhere in 30 timelines");
        for f in &report.failures {
            assert!(
                f.flight.contains("\"reason\": \"campaign counterexample (timeline"),
                "{}",
                f.flight
            );
            assert!(f.flight.contains("\"events\": ["), "{}", f.flight);
            assert!(
                f.flight.contains("\"kind\": \"send\"") && f.flight.contains("\"kind\": \"recv\""),
                "a blocked run must still have sent and received something: {}",
                f.flight
            );
        }
        let rendered = report.failures[0].render();
        for needle in ["minimal counterexample", "flight recorder:", "\"events\": ["] {
            assert!(rendered.contains(needle), "{rendered}");
        }
    }

    #[test]
    fn safe_family_is_green_for_the_paper_protocol() {
        let config = CampaignConfig::safe(ProtocolKind::HuangLi3pc, 4, 15, 0xBADC0DE);
        let report = Campaign::new(config).run();
        assert!(report.all_green(), "{:#?}", report.failures);
    }
}
