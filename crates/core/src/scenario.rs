//! Scenario description: which protocol, which network conditions.

// The timeline DSL is the fault-model front door; re-exported here so
// `ptp_core::scenario::ScenarioBuilder` is the canonical path.
pub use crate::timeline::{At, ScenarioBuilder, TimedEvent, Timeline, TimelineEvent};

use ptp_protocols::api::Vote;
use ptp_protocols::quorum::QuorumConfig;
use ptp_simnet::{
    DegradeWindow, DelayModel, EnvelopeFault, FailureSpec, NetConfig, PartitionEngine,
    PartitionMode, SimTime, SiteId,
};

/// Which commit protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolKind {
    /// Fig. 1: plain two-phase commit (no timeout/UD transitions).
    Plain2pc,
    /// Fig. 2: extended 2PC — ack phase plus the Rule (a)/(b) augmentation
    /// derived at `n = 2`.
    Extended2pc,
    /// Fig. 3: plain three-phase commit.
    Plain3pc,
    /// Sec. 3 baseline: 3PC naively augmented by Rule (a)/(b) at the
    /// actual `n`.
    Naive3pc,
    /// The paper's protocol: modified 3PC + termination protocol, Sec. 6
    /// transient variant (the complete protocol).
    HuangLi3pc,
    /// The paper's protocol in the Sec. 5 static variant (assumes the
    /// partition outlasts all affected transactions).
    HuangLi3pcStatic,
    /// Theorem 10: the four-phase protocol with its generated termination
    /// protocol.
    HuangLi4pc,
    /// Skeen 1982 quorum commit with majority quorums.
    QuorumMajority,
}

impl ProtocolKind {
    /// All kinds, for table-driven experiments.
    pub const ALL: [ProtocolKind; 8] = [
        ProtocolKind::Plain2pc,
        ProtocolKind::Extended2pc,
        ProtocolKind::Plain3pc,
        ProtocolKind::Naive3pc,
        ProtocolKind::HuangLi3pc,
        ProtocolKind::HuangLi3pcStatic,
        ProtocolKind::HuangLi4pc,
        ProtocolKind::QuorumMajority,
    ];

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Plain2pc => "2PC",
            ProtocolKind::Extended2pc => "E2PC",
            ProtocolKind::Plain3pc => "3PC",
            ProtocolKind::Naive3pc => "3PC+rules",
            ProtocolKind::HuangLi3pc => "HL-3PC",
            ProtocolKind::HuangLi3pcStatic => "HL-3PC(static)",
            ProtocolKind::HuangLi4pc => "HL-4PC",
            ProtocolKind::QuorumMajority => "Quorum",
        }
    }

    /// The quorum configuration a kind implies, if it is quorum-based.
    pub fn quorum_config(self, n: usize) -> Option<QuorumConfig> {
        match self {
            ProtocolKind::QuorumMajority => Some(QuorumConfig::majority(n)),
            _ => None,
        }
    }
}

/// One episode of a [`PartitionSchedule`]: at tick `at` the sites regroup
/// into `groups`; if `heal_at` is set, full connectivity returns at that
/// instant (until the next episode, if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEpisode {
    /// The connectivity groups. Two = simple partitioning; more = multiple
    /// partitioning. Sites listed nowhere are isolated singletons.
    pub groups: Vec<Vec<SiteId>>,
    /// Episode start, in ticks.
    pub at: u64,
    /// Heal instant, in ticks, if the episode ends.
    pub heal_at: Option<u64>,
}

/// An ordered multi-episode partition schedule: cascading splits, staggered
/// heals, regroupings. This is the general form behind
/// [`PartitionShape::Schedule`]; the paper's *simple* partitioning is the
/// one-episode, two-group special case.
///
/// Episodes are appended in time order with [`PartitionSchedule::episode`],
/// which validates the no-overlap invariant (an episode may start only at or
/// after its predecessor's heal instant; an unhealed episode must be last).
///
/// # Examples
///
/// Split → heal → re-split, then a run through the usual session API:
///
/// ```
/// use ptp_core::{PartitionSchedule, ProtocolKind, Scenario, Session};
/// use ptp_simnet::SiteId;
///
/// let schedule = PartitionSchedule::new()
///     .episode(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)]], 1500, Some(4000))
///     .episode(vec![vec![SiteId(0), SiteId(2)], vec![SiteId(1)]], 6500, None);
/// assert_eq!(schedule.len(), 2);
/// assert!(!schedule.is_multi_group());
///
/// let scenario = Scenario::new(3).partition_schedule(schedule);
/// let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
/// assert!(session.run(&scenario).verdict.is_atomic());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionSchedule {
    episodes: Vec<PartitionEpisode>,
}

impl PartitionSchedule {
    /// An empty schedule (always connected until episodes are added).
    pub fn new() -> PartitionSchedule {
        PartitionSchedule::default()
    }

    /// Appends an episode: the sites regroup into `groups` at tick `at`,
    /// healing at `heal_at` if given.
    ///
    /// # Panics
    ///
    /// Panics if the episode overlaps its predecessor (`at` before the
    /// previous heal instant, or the previous episode never heals), or if
    /// `heal_at <= at`.
    pub fn episode(
        mut self,
        groups: Vec<Vec<SiteId>>,
        at: u64,
        heal_at: Option<u64>,
    ) -> PartitionSchedule {
        if let Some(prev) = self.episodes.last() {
            let end = prev.heal_at.expect("an unhealed episode must be the last");
            assert!(end <= at, "partition episodes overlap in time");
        }
        if let Some(h) = heal_at {
            assert!(at < h, "an episode must heal after it starts");
        }
        self.episodes.push(PartitionEpisode { groups, at, heal_at });
        self
    }

    /// The episodes, in time order.
    pub fn episodes(&self) -> &[PartitionEpisode] {
        &self.episodes
    }

    /// Number of episodes.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// True if the schedule has no episodes.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// True if any episode splits the sites into more than two groups
    /// (multiple partitioning — outside the paper's model).
    pub fn is_multi_group(&self) -> bool {
        self.episodes.iter().any(|e| e.groups.len() > 2)
    }

    /// Truncates/extends the schedule in place to `count` episodes, keeping
    /// surviving episode records (and their group-vector capacity) for
    /// [`PartitionSchedule::episode_groups`] to rewrite. The in-place dual
    /// of building a fresh schedule with [`PartitionSchedule::episode`];
    /// every episode must then be rewritten, in index order. Kept episodes
    /// have their heal instants stamped out, so an out-of-order rewrite
    /// trips the predecessor check instead of validating against a stale
    /// header.
    pub fn reset(&mut self, count: usize) {
        self.episodes.truncate(count);
        for episode in &mut self.episodes {
            episode.heal_at = None;
        }
        self.episodes.resize_with(count, || PartitionEpisode {
            groups: Vec::new(),
            at: 0,
            heal_at: None,
        });
    }

    /// Rewrites episode `index`'s start/heal instants and returns its
    /// cleared group buffers (recycled, like
    /// [`ptp_simnet::PartitionEngine::episode_groups`]) for the caller to
    /// fill. Like the engine-level writer — and unlike the validated
    /// [`PartitionSchedule::episode`] builder — a degenerate heal instant
    /// (`heal_at <= at`) is tolerated as an empty, never-active episode.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the schedule set up by
    /// [`PartitionSchedule::reset`], or if the episode would overlap its
    /// predecessor (an unhealed — or not-yet-rewritten — predecessor means
    /// this write is out of order).
    pub fn episode_groups(
        &mut self,
        index: usize,
        at: u64,
        heal_at: Option<u64>,
        group_count: usize,
    ) -> &mut [Vec<SiteId>] {
        assert!(
            index < self.episodes.len(),
            "episode index {index} outside the {}-episode schedule",
            self.episodes.len()
        );
        if index > 0 {
            let end =
                self.episodes[index - 1].heal_at.expect("an unhealed episode must be the last");
            assert!(end <= at, "partition episodes overlap in time");
        }
        let episode = &mut self.episodes[index];
        episode.at = at;
        episode.heal_at = heal_at;
        for g in episode.groups.iter_mut() {
            g.clear();
        }
        episode.groups.truncate(group_count);
        episode.groups.resize_with(group_count, Vec::new);
        &mut episode.groups
    }
}

/// How (and whether) the network partitions during the run.
///
/// # Examples
///
/// Each [`Scenario`] builder maps to one shape:
///
/// ```
/// use ptp_core::{PartitionSchedule, PartitionShape, Scenario};
/// use ptp_simnet::SiteId;
///
/// assert_eq!(Scenario::new(3).partition, PartitionShape::None);
/// let s = Scenario::new(3).partition_g2(vec![SiteId(2)], 2500);
/// assert!(matches!(s.partition, PartitionShape::Simple { .. }));
/// let s = Scenario::new(3).partition_schedule(
///     PartitionSchedule::new().episode(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)]], 1000, None),
/// );
/// assert!(matches!(s.partition, PartitionShape::Schedule(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionShape {
    /// No partition.
    None,
    /// Simple partitioning: `g2` (the non-master group) splits off at `at`;
    /// heals at `heal_at` if given. Sites not in `g2` stay with the master.
    Simple {
        /// The slaves separated from the master (the paper's G2).
        g2: Vec<SiteId>,
        /// Partition instant, in ticks.
        at: u64,
        /// Heal instant (transient partitioning), in ticks.
        heal_at: Option<u64>,
    },
    /// Multiple partitioning: explicit groups (experiment E12).
    Multiple {
        /// The connectivity groups.
        groups: Vec<Vec<SiteId>>,
        /// Partition instant, in ticks.
        at: u64,
        /// Heal instant, if any.
        heal_at: Option<u64>,
    },
    /// An ordered multi-episode schedule (cascading splits, staggered
    /// heals, regroupings) — the generalization the schedule sweeps explore.
    Schedule(PartitionSchedule),
}

/// A complete scenario: cluster size, votes, network behaviour.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of sites (site 0 is the master).
    pub n: usize,
    /// One vote per slave.
    pub votes: Vec<Vote>,
    /// Partition shape.
    pub partition: PartitionShape,
    /// Per-message delays (clamped to `(0, T]` by the network).
    pub delay: DelayModel,
    /// Ticks per `T`.
    pub t_unit: u64,
    /// Optimistic (return undeliverables) or pessimistic (drop) partitions.
    pub mode: PartitionMode,
    /// Site failures to inject (experiment E13 only; the paper's protocol
    /// assumes none).
    pub failures: Vec<FailureSpec>,
    /// Envelope-level faults (duplicate / reorder / drop) to arm.
    pub env_faults: Vec<EnvelopeFault>,
    /// Degraded-network delay windows to arm.
    pub degrades: Vec<DegradeWindow>,
    /// Simulation horizon in units of `T`.
    pub horizon_t: u64,
}

impl Scenario {
    /// A failure-free scenario: `n` sites, all yes votes, fixed `T`-delays.
    pub fn new(n: usize) -> Scenario {
        assert!(n >= 2);
        Scenario {
            n,
            votes: vec![Vote::Yes; n - 1],
            partition: PartitionShape::None,
            delay: DelayModel::Fixed(1000),
            t_unit: 1000,
            mode: PartitionMode::Optimistic,
            failures: Vec::new(),
            env_faults: Vec::new(),
            degrades: Vec::new(),
            horizon_t: 100,
        }
    }

    /// Sets every slave's vote.
    pub fn votes(mut self, votes: Vec<Vote>) -> Scenario {
        assert_eq!(votes.len(), self.n - 1);
        self.votes = votes;
        self
    }

    /// Splits `g2` away from the master at tick `at`, permanently.
    pub fn partition_g2(mut self, g2: Vec<SiteId>, at: u64) -> Scenario {
        self.partition = PartitionShape::Simple { g2, at, heal_at: None };
        self
    }

    /// Splits `g2` away at `at` and heals at `heal_at` (transient).
    pub fn transient_partition(mut self, g2: Vec<SiteId>, at: u64, heal_at: u64) -> Scenario {
        assert!(heal_at > at);
        self.partition = PartitionShape::Simple { g2, at, heal_at: Some(heal_at) };
        self
    }

    /// Sets an explicit multiple partition.
    pub fn multiple_partition(mut self, groups: Vec<Vec<SiteId>>, at: u64) -> Scenario {
        self.partition = PartitionShape::Multiple { groups, at, heal_at: None };
        self
    }

    /// Sets a multi-episode partition schedule (see [`PartitionSchedule`]).
    pub fn partition_schedule(mut self, schedule: PartitionSchedule) -> Scenario {
        self.partition = PartitionShape::Schedule(schedule);
        self
    }

    /// Sets the delay model.
    pub fn delay(mut self, delay: DelayModel) -> Scenario {
        self.delay = delay;
        self
    }

    /// Switches to the pessimistic (message-loss) model.
    pub fn pessimistic(mut self) -> Scenario {
        self.mode = PartitionMode::Pessimistic;
        self
    }

    /// Injects a site failure.
    pub fn fail(mut self, spec: FailureSpec) -> Scenario {
        self.failures.push(spec);
        self
    }

    /// Arms an envelope-level fault (duplicate / reorder / drop).
    pub fn env_fault(mut self, fault: EnvelopeFault) -> Scenario {
        self.env_faults.push(fault);
        self
    }

    /// Arms a degraded-network delay window.
    pub fn degrade(mut self, window: DegradeWindow) -> Scenario {
        self.degrades.push(window);
        self
    }

    /// The derived network configuration.
    pub fn net_config(&self) -> NetConfig {
        NetConfig {
            t_unit: self.t_unit,
            mode: self.mode,
            max_time: SimTime(self.t_unit * self.horizon_t),
        }
    }

    /// The derived partition engine, as a fresh allocation.
    ///
    /// Repeated-run workloads should prefer [`Scenario::configure_partition`]
    /// (via [`crate::Session`]), which rewrites an existing engine's buffers
    /// in place instead of rebuilding the G1/G2 vectors per call.
    pub fn partition_engine(&self) -> PartitionEngine {
        let mut engine = PartitionEngine::always_connected();
        self.configure_partition(&mut engine);
        engine
    }

    /// Rewrites `engine` in place to this scenario's partition shape,
    /// reusing the engine's episode and group buffers. The G1 complement of
    /// a simple partition is written directly into the engine's first group
    /// buffer — no intermediate vector is built.
    pub fn configure_partition(&self, engine: &mut PartitionEngine) {
        match &self.partition {
            PartitionShape::None => engine.clear(),
            PartitionShape::Simple { g2, at, heal_at } => {
                let groups = engine.reset_single(SimTime(*at), heal_at.map(SimTime), 2);
                groups[0].extend((0..self.n as u16).map(SiteId).filter(|s| !g2.contains(s)));
                groups[1].extend_from_slice(g2);
            }
            PartitionShape::Multiple { groups, at, heal_at } => {
                let bufs = engine.reset_single(SimTime(*at), heal_at.map(SimTime), groups.len());
                for (buf, group) in bufs.iter_mut().zip(groups) {
                    buf.extend_from_slice(group);
                }
            }
            PartitionShape::Schedule(schedule) => {
                engine.reset_schedule(schedule.len());
                for (i, episode) in schedule.episodes().iter().enumerate() {
                    let bufs = engine.episode_groups(
                        i,
                        SimTime(episode.at),
                        episode.heal_at.map(SimTime),
                        episode.groups.len(),
                    );
                    for (buf, group) in bufs.iter_mut().zip(&episode.groups) {
                        buf.extend_from_slice(group);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_shape() {
        let s = Scenario::new(3);
        assert_eq!(s.votes.len(), 2);
        assert_eq!(s.partition, PartitionShape::None);
        assert_eq!(s.net_config().t_unit, 1000);
    }

    #[test]
    fn partition_engine_puts_master_in_g1() {
        let s = Scenario::new(3).partition_g2(vec![SiteId(2)], 1500);
        let eng = s.partition_engine();
        assert!(eng.connected(SiteId(0), SiteId(1), SimTime(2000)));
        assert!(!eng.connected(SiteId(0), SiteId(2), SimTime(2000)));
        assert!(eng.connected(SiteId(0), SiteId(2), SimTime(1000)));
    }

    #[test]
    fn transient_partition_heals() {
        let s = Scenario::new(3).transient_partition(vec![SiteId(2)], 1000, 5000);
        let eng = s.partition_engine();
        assert!(!eng.connected(SiteId(0), SiteId(2), SimTime(3000)));
        assert!(eng.connected(SiteId(0), SiteId(2), SimTime(5000)));
    }

    #[test]
    fn schedule_engine_replays_every_episode() {
        let schedule = PartitionSchedule::new()
            .episode(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)]], 1000, Some(3000))
            .episode(vec![vec![SiteId(0)], vec![SiteId(1)], vec![SiteId(2)]], 5000, None);
        let s = Scenario::new(3).partition_schedule(schedule);
        let eng = s.partition_engine();
        assert!(!eng.connected(SiteId(0), SiteId(2), SimTime(2000)), "episode 1 split");
        assert!(eng.connected(SiteId(0), SiteId(2), SimTime(4000)), "healed gap");
        assert!(!eng.connected(SiteId(0), SiteId(1), SimTime(6000)), "episode 2 shatter");
    }

    #[test]
    fn single_episode_schedule_matches_simple_shape_engine() {
        // A one-episode two-group schedule must configure the engine
        // identically to the legacy Simple shape (the reset_single path).
        let simple = Scenario::new(4).transient_partition(vec![SiteId(2), SiteId(3)], 1500, 6000);
        let schedule = Scenario::new(4).partition_schedule(PartitionSchedule::new().episode(
            vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2), SiteId(3)]],
            1500,
            Some(6000),
        ));
        assert_eq!(simple.partition_engine().episodes(), schedule.partition_engine().episodes());
    }

    #[test]
    fn schedule_reset_reuses_buffers_and_matches_builder() {
        let built = PartitionSchedule::new()
            .episode(vec![vec![SiteId(0)], vec![SiteId(1)]], 100, Some(200))
            .episode(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)]], 300, None);
        let mut reused = PartitionSchedule::new().episode(
            vec![vec![SiteId(5), SiteId(6)], vec![SiteId(7)]],
            50,
            None,
        );
        reused.reset(2);
        let g = reused.episode_groups(0, 100, Some(200), 2);
        g[0].push(SiteId(0));
        g[1].push(SiteId(1));
        let g = reused.episode_groups(1, 300, None, 2);
        g[0].extend([SiteId(0), SiteId(1)]);
        g[1].push(SiteId(2));
        assert_eq!(reused, built);
    }

    #[test]
    fn degenerate_simple_heal_still_configures() {
        // A Simple shape whose heal instant equals its start was a harmless
        // no-op before the schedule refactor; it must stay one.
        let mut s = Scenario::new(3);
        s.partition = PartitionShape::Simple { g2: vec![SiteId(2)], at: 2000, heal_at: Some(2000) };
        let eng = s.partition_engine();
        assert!(eng.connected(SiteId(0), SiteId(2), SimTime(2000)));
        assert!(eng.connected(SiteId(0), SiteId(2), SimTime(3000)));
    }

    #[test]
    #[should_panic(expected = "unhealed")]
    fn schedule_out_of_order_rewrite_is_rejected() {
        let mut schedule = PartitionSchedule::new()
            .episode(vec![vec![SiteId(0)], vec![SiteId(1)]], 0, Some(50))
            .episode(vec![vec![SiteId(0)], vec![SiteId(1)]], 100, None);
        schedule.reset(2);
        // Episode 0's stale heal instant is stamped out by reset, so
        // writing episode 1 first cannot silently validate against it.
        let _ = schedule.episode_groups(1, 100, None, 2);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn schedule_builder_rejects_overlap() {
        let _ = PartitionSchedule::new()
            .episode(vec![vec![SiteId(0)], vec![SiteId(1)]], 100, Some(500))
            .episode(vec![vec![SiteId(0)], vec![SiteId(1)]], 400, None);
    }

    #[test]
    #[should_panic(expected = "unhealed")]
    fn schedule_builder_rejects_episode_after_permanent_split() {
        let _ = PartitionSchedule::new()
            .episode(vec![vec![SiteId(0)], vec![SiteId(1)]], 100, None)
            .episode(vec![vec![SiteId(0)], vec![SiteId(1)]], 400, None);
    }

    #[test]
    fn multi_group_classification() {
        let two = PartitionSchedule::new().episode(vec![vec![SiteId(0)], vec![SiteId(1)]], 0, None);
        assert!(!two.is_multi_group());
        let three = PartitionSchedule::new().episode(
            vec![vec![SiteId(0)], vec![SiteId(1)], vec![SiteId(2)]],
            0,
            None,
        );
        assert!(three.is_multi_group());
    }

    #[test]
    fn protocol_names_unique() {
        let mut names: Vec<&str> = ProtocolKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ProtocolKind::ALL.len());
    }

    #[test]
    fn quorum_config_only_for_quorum() {
        assert!(ProtocolKind::QuorumMajority.quorum_config(5).is_some());
        assert!(ProtocolKind::HuangLi3pc.quorum_config(5).is_none());
    }
}
