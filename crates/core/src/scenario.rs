//! Scenario description: which protocol, which network conditions.

use ptp_protocols::api::Vote;
use ptp_protocols::quorum::QuorumConfig;
use ptp_simnet::{
    DelayModel, FailureSpec, NetConfig, PartitionEngine, PartitionMode, SimTime, SiteId,
};

/// Which commit protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolKind {
    /// Fig. 1: plain two-phase commit (no timeout/UD transitions).
    Plain2pc,
    /// Fig. 2: extended 2PC — ack phase plus the Rule (a)/(b) augmentation
    /// derived at `n = 2`.
    Extended2pc,
    /// Fig. 3: plain three-phase commit.
    Plain3pc,
    /// Sec. 3 baseline: 3PC naively augmented by Rule (a)/(b) at the
    /// actual `n`.
    Naive3pc,
    /// The paper's protocol: modified 3PC + termination protocol, Sec. 6
    /// transient variant (the complete protocol).
    HuangLi3pc,
    /// The paper's protocol in the Sec. 5 static variant (assumes the
    /// partition outlasts all affected transactions).
    HuangLi3pcStatic,
    /// Theorem 10: the four-phase protocol with its generated termination
    /// protocol.
    HuangLi4pc,
    /// Skeen 1982 quorum commit with majority quorums.
    QuorumMajority,
}

impl ProtocolKind {
    /// All kinds, for table-driven experiments.
    pub const ALL: [ProtocolKind; 8] = [
        ProtocolKind::Plain2pc,
        ProtocolKind::Extended2pc,
        ProtocolKind::Plain3pc,
        ProtocolKind::Naive3pc,
        ProtocolKind::HuangLi3pc,
        ProtocolKind::HuangLi3pcStatic,
        ProtocolKind::HuangLi4pc,
        ProtocolKind::QuorumMajority,
    ];

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Plain2pc => "2PC",
            ProtocolKind::Extended2pc => "E2PC",
            ProtocolKind::Plain3pc => "3PC",
            ProtocolKind::Naive3pc => "3PC+rules",
            ProtocolKind::HuangLi3pc => "HL-3PC",
            ProtocolKind::HuangLi3pcStatic => "HL-3PC(static)",
            ProtocolKind::HuangLi4pc => "HL-4PC",
            ProtocolKind::QuorumMajority => "Quorum",
        }
    }

    /// The quorum configuration a kind implies, if it is quorum-based.
    pub fn quorum_config(self, n: usize) -> Option<QuorumConfig> {
        match self {
            ProtocolKind::QuorumMajority => Some(QuorumConfig::majority(n)),
            _ => None,
        }
    }
}

/// How (and whether) the network partitions during the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionShape {
    /// No partition.
    None,
    /// Simple partitioning: `g2` (the non-master group) splits off at `at`;
    /// heals at `heal_at` if given. Sites not in `g2` stay with the master.
    Simple {
        /// The slaves separated from the master (the paper's G2).
        g2: Vec<SiteId>,
        /// Partition instant, in ticks.
        at: u64,
        /// Heal instant (transient partitioning), in ticks.
        heal_at: Option<u64>,
    },
    /// Multiple partitioning: explicit groups (experiment E12).
    Multiple {
        /// The connectivity groups.
        groups: Vec<Vec<SiteId>>,
        /// Partition instant, in ticks.
        at: u64,
        /// Heal instant, if any.
        heal_at: Option<u64>,
    },
}

/// A complete scenario: cluster size, votes, network behaviour.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of sites (site 0 is the master).
    pub n: usize,
    /// One vote per slave.
    pub votes: Vec<Vote>,
    /// Partition shape.
    pub partition: PartitionShape,
    /// Per-message delays (clamped to `(0, T]` by the network).
    pub delay: DelayModel,
    /// Ticks per `T`.
    pub t_unit: u64,
    /// Optimistic (return undeliverables) or pessimistic (drop) partitions.
    pub mode: PartitionMode,
    /// Site failures to inject (experiment E13 only; the paper's protocol
    /// assumes none).
    pub failures: Vec<FailureSpec>,
    /// Simulation horizon in units of `T`.
    pub horizon_t: u64,
}

impl Scenario {
    /// A failure-free scenario: `n` sites, all yes votes, fixed `T`-delays.
    pub fn new(n: usize) -> Scenario {
        assert!(n >= 2);
        Scenario {
            n,
            votes: vec![Vote::Yes; n - 1],
            partition: PartitionShape::None,
            delay: DelayModel::Fixed(1000),
            t_unit: 1000,
            mode: PartitionMode::Optimistic,
            failures: Vec::new(),
            horizon_t: 100,
        }
    }

    /// Sets every slave's vote.
    pub fn votes(mut self, votes: Vec<Vote>) -> Scenario {
        assert_eq!(votes.len(), self.n - 1);
        self.votes = votes;
        self
    }

    /// Splits `g2` away from the master at tick `at`, permanently.
    pub fn partition_g2(mut self, g2: Vec<SiteId>, at: u64) -> Scenario {
        self.partition = PartitionShape::Simple { g2, at, heal_at: None };
        self
    }

    /// Splits `g2` away at `at` and heals at `heal_at` (transient).
    pub fn transient_partition(mut self, g2: Vec<SiteId>, at: u64, heal_at: u64) -> Scenario {
        assert!(heal_at > at);
        self.partition = PartitionShape::Simple { g2, at, heal_at: Some(heal_at) };
        self
    }

    /// Sets an explicit multiple partition.
    pub fn multiple_partition(mut self, groups: Vec<Vec<SiteId>>, at: u64) -> Scenario {
        self.partition = PartitionShape::Multiple { groups, at, heal_at: None };
        self
    }

    /// Sets the delay model.
    pub fn delay(mut self, delay: DelayModel) -> Scenario {
        self.delay = delay;
        self
    }

    /// Switches to the pessimistic (message-loss) model.
    pub fn pessimistic(mut self) -> Scenario {
        self.mode = PartitionMode::Pessimistic;
        self
    }

    /// Injects a site failure.
    pub fn fail(mut self, spec: FailureSpec) -> Scenario {
        self.failures.push(spec);
        self
    }

    /// The derived network configuration.
    pub fn net_config(&self) -> NetConfig {
        NetConfig {
            t_unit: self.t_unit,
            mode: self.mode,
            max_time: SimTime(self.t_unit * self.horizon_t),
        }
    }

    /// The derived partition engine, as a fresh allocation.
    ///
    /// Repeated-run workloads should prefer [`Scenario::configure_partition`]
    /// (via [`crate::Session`]), which rewrites an existing engine's buffers
    /// in place instead of rebuilding the G1/G2 vectors per call.
    pub fn partition_engine(&self) -> PartitionEngine {
        let mut engine = PartitionEngine::always_connected();
        self.configure_partition(&mut engine);
        engine
    }

    /// Rewrites `engine` in place to this scenario's partition shape,
    /// reusing the engine's episode and group buffers. The G1 complement of
    /// a simple partition is written directly into the engine's first group
    /// buffer — no intermediate vector is built.
    pub fn configure_partition(&self, engine: &mut PartitionEngine) {
        match &self.partition {
            PartitionShape::None => engine.clear(),
            PartitionShape::Simple { g2, at, heal_at } => {
                let groups = engine.reset_single(SimTime(*at), heal_at.map(SimTime), 2);
                groups[0].extend((0..self.n as u16).map(SiteId).filter(|s| !g2.contains(s)));
                groups[1].extend_from_slice(g2);
            }
            PartitionShape::Multiple { groups, at, heal_at } => {
                let bufs = engine.reset_single(SimTime(*at), heal_at.map(SimTime), groups.len());
                for (buf, group) in bufs.iter_mut().zip(groups) {
                    buf.extend_from_slice(group);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_shape() {
        let s = Scenario::new(3);
        assert_eq!(s.votes.len(), 2);
        assert_eq!(s.partition, PartitionShape::None);
        assert_eq!(s.net_config().t_unit, 1000);
    }

    #[test]
    fn partition_engine_puts_master_in_g1() {
        let s = Scenario::new(3).partition_g2(vec![SiteId(2)], 1500);
        let eng = s.partition_engine();
        assert!(eng.connected(SiteId(0), SiteId(1), SimTime(2000)));
        assert!(!eng.connected(SiteId(0), SiteId(2), SimTime(2000)));
        assert!(eng.connected(SiteId(0), SiteId(2), SimTime(1000)));
    }

    #[test]
    fn transient_partition_heals() {
        let s = Scenario::new(3).transient_partition(vec![SiteId(2)], 1000, 5000);
        let eng = s.partition_engine();
        assert!(!eng.connected(SiteId(0), SiteId(2), SimTime(3000)));
        assert!(eng.connected(SiteId(0), SiteId(2), SimTime(5000)));
    }

    #[test]
    fn protocol_names_unique() {
        let mut names: Vec<&str> = ProtocolKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ProtocolKind::ALL.len());
    }

    #[test]
    fn quorum_config_only_for_quorum() {
        assert!(ProtocolKind::QuorumMajority.quorum_config(5).is_some());
        assert!(ProtocolKind::HuangLi3pc.quorum_config(5).is_none());
    }
}
