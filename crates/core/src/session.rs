//! Reusable scenario-execution sessions.
//!
//! [`Session`] is the workhorse of the redesigned execution API:
//! `Session::new(kind, n)` builds the protocol cluster **once** —
//! enum-dispatched, one flat allocation — and `session.run(&scenario)`
//! resets and reuses it, together with the simulator's event heap, timer
//! slab and the partition engine's group buffers, for every subsequent run.
//! The sweep engine runs each worker's grid cells through one session, so
//! the steady-state hot path performs no per-cell cluster construction, no
//! `Box<dyn Participant>` allocation, and no G1/G2 vector rebuilds.
//!
//! Determinism is unaffected: a reused session produces field-identical
//! [`ScenarioResult`]s (outcomes, verdict, trace, report) to fresh one-shot
//! runs — the property suite checks this for every [`ProtocolKind`].

use crate::run::ScenarioResult;
use crate::scenario::{ProtocolKind, Scenario};
use ptp_protocols::clusters::{
    extended_2pc_cluster_any, huang_li_3pc_cluster_any, huang_li_4pc_cluster_any,
    naive_augmented_3pc_cluster_any, plain_2pc_cluster_any, plain_3pc_cluster_any,
};
use ptp_protocols::quorum::quorum_cluster_any;
use ptp_protocols::runner::ClusterRunner;
use ptp_protocols::termination::TerminationVariant;
use ptp_protocols::{AnyParticipant, RunOptions, Verdict, Vote};
use ptp_simnet::{DegradeWindow, EnvelopeFault, FailureSpec};

/// Picks the effective slice for a per-run fault list that exists both on
/// the scenario and the options: borrow whichever side is alone non-empty,
/// concatenate into `scratch` only when both contribute.
fn merged<'a, T: Copy>(scenario: &'a [T], options: &'a [T], scratch: &'a mut Vec<T>) -> &'a [T] {
    match (scenario.is_empty(), options.is_empty()) {
        (true, _) => options,
        (false, true) => scenario,
        (false, false) => {
            scratch.clear();
            scratch.extend_from_slice(scenario);
            scratch.extend_from_slice(options);
            scratch
        }
    }
}

/// Builds the enum-dispatched participant vector for a protocol kind.
pub fn build_cluster_any(kind: ProtocolKind, n: usize, votes: &[Vote]) -> Vec<AnyParticipant> {
    match kind {
        ProtocolKind::Plain2pc => plain_2pc_cluster_any(n, votes),
        ProtocolKind::Extended2pc => extended_2pc_cluster_any(n, votes),
        ProtocolKind::Plain3pc => plain_3pc_cluster_any(n, votes),
        ProtocolKind::Naive3pc => naive_augmented_3pc_cluster_any(n, votes),
        ProtocolKind::HuangLi3pc => {
            huang_li_3pc_cluster_any(n, votes, TerminationVariant::Transient)
        }
        ProtocolKind::HuangLi3pcStatic => {
            huang_li_3pc_cluster_any(n, votes, TerminationVariant::Static)
        }
        ProtocolKind::HuangLi4pc => {
            huang_li_4pc_cluster_any(n, votes, TerminationVariant::Transient)
        }
        ProtocolKind::QuorumMajority => {
            quorum_cluster_any(kind.quorum_config(n).expect("quorum kind"), votes)
        }
    }
}

/// A reusable execution session: one protocol kind, one cluster size, many
/// scenarios.
///
/// ```
/// use ptp_core::{ProtocolKind, RunOptions, Scenario, Session};
/// use ptp_simnet::SiteId;
///
/// let mut session = Session::new(ProtocolKind::HuangLi3pc, 4);
/// for at in [0u64, 1500, 2500, 4500] {
///     let scenario = Scenario::new(4).partition_g2(vec![SiteId(3)], at);
///     let result = session.run(&scenario);
///     assert!(result.verdict.is_resilient(), "t={at}: {:?}", result.verdict);
/// }
/// // Need the full trace? Ask for it per run:
/// let recorded = session.run_with(
///     &Scenario::new(4).partition_g2(vec![SiteId(3)], 2500),
///     &RunOptions::recording(),
/// );
/// assert!(!recorded.trace.is_empty());
/// ```
pub struct Session {
    kind: ProtocolKind,
    n: usize,
    runner: ClusterRunner<AnyParticipant>,
    /// Concatenation buffer for scenario + option failures (rarely needed;
    /// kept to avoid allocating when it is).
    failures_scratch: Vec<FailureSpec>,
    /// Same, for envelope faults.
    env_scratch: Vec<EnvelopeFault>,
    /// Same, for degrade windows.
    degrade_scratch: Vec<DegradeWindow>,
}

impl Session {
    /// Builds the cluster for `kind` with `n` sites (site 0 the master).
    /// Votes are supplied per run by each scenario.
    pub fn new(kind: ProtocolKind, n: usize) -> Session {
        assert!(n >= 2);
        let votes = vec![Vote::Yes; n - 1];
        Session {
            kind,
            n,
            runner: ClusterRunner::new(build_cluster_any(kind, n, &votes)),
            failures_scratch: Vec::new(),
            env_scratch: Vec::new(),
            degrade_scratch: Vec::new(),
        }
    }

    /// The protocol this session runs.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The cluster size.
    pub fn sites(&self) -> usize {
        self.n
    }

    /// Direct access to the underlying cluster runner (custom participant
    /// inspection or resets between runs).
    pub fn runner_mut(&mut self) -> &mut ClusterRunner<AnyParticipant> {
        &mut self.runner
    }

    /// Switches event-attribution profiling on or off for subsequent runs
    /// (see [`ptp_simnet::ProfSink`]). Off by default; while on, samples
    /// accumulate across runs until [`Session::take_profile`].
    pub fn set_profiling(&mut self, on: bool) {
        self.runner.set_profiling(on);
    }

    /// Drains the profile accumulated since profiling was switched on (or
    /// last drained). Empty unless [`Session::set_profiling`] is on.
    pub fn take_profile(&mut self) -> ptp_simnet::Profile {
        self.runner.take_profile()
    }

    /// Runs `scenario` with default options (counters-only tracing — the
    /// fast path; [`ScenarioResult::trace`] comes back empty). Use
    /// [`Session::run_with`] and [`RunOptions::recording`] when the trace
    /// itself is needed.
    pub fn run(&mut self, scenario: &Scenario) -> ScenarioResult {
        self.run_with(scenario, &RunOptions::new())
    }

    /// Runs `scenario` under typed [`RunOptions`].
    ///
    /// The effective failure set is the scenario's failures followed by the
    /// options' failures; `options.horizon_t` overrides the scenario's
    /// horizon.
    ///
    /// # Panics
    ///
    /// If `scenario.n` differs from the session's cluster size.
    pub fn run_with(&mut self, scenario: &Scenario, options: &RunOptions) -> ScenarioResult {
        let (trace, report) = self.execute(scenario, options);
        let outcomes = self.runner.last_outcomes().to_vec();
        ScenarioResult { verdict: Verdict::judge(&outcomes), outcomes, trace, report }
    }

    /// Runs `scenario` and returns only the verdict — the sweep hot path:
    /// no outcome vector, no trace, nothing cloned.
    pub fn verdict(&mut self, scenario: &Scenario, options: &RunOptions) -> Verdict {
        let _ = self.execute(scenario, options);
        Verdict::judge(self.runner.last_outcomes())
    }

    fn execute(
        &mut self,
        scenario: &Scenario,
        options: &RunOptions,
    ) -> (ptp_simnet::Trace, ptp_simnet::RunReport) {
        assert_eq!(
            scenario.n, self.n,
            "scenario has {} sites but the session was built for {}",
            scenario.n, self.n
        );
        self.runner.reset(&scenario.votes);
        scenario.configure_partition(self.runner.partition_mut());
        let config = options.apply_horizon(scenario.net_config());
        let failures = merged(&scenario.failures, &options.failures, &mut self.failures_scratch);
        let env_faults = merged(&scenario.env_faults, &options.env_faults, &mut self.env_scratch);
        let degrades = merged(&scenario.degrades, &options.degrades, &mut self.degrade_scratch);
        let (_, trace, report) = self.runner.run_borrowed_faulty(
            config,
            &scenario.delay,
            options.trace,
            failures,
            env_faults,
            degrades,
        );
        (trace, report)
    }
}

/// A lazily built collection of [`Session`]s keyed by `(kind, n)`.
///
/// Flows that interleave several protocols or cluster sizes — the Sec. 6
/// case classifier, the quorum baseline, protocol-comparison tables — hold
/// one pool and route every run through it, so each distinct cluster is
/// built exactly once for the whole flow instead of once per call site.
///
/// ```
/// use ptp_core::{ProtocolKind, Scenario, SessionPool};
/// use ptp_simnet::SiteId;
///
/// let mut pool = SessionPool::new();
/// for kind in [ProtocolKind::HuangLi3pc, ProtocolKind::QuorumMajority] {
///     for at in [1500u64, 2500] {
///         let scenario = Scenario::new(5).partition_g2(vec![SiteId(4)], at);
///         let result = pool.session(kind, 5).run(&scenario);
///         assert!(result.verdict.is_atomic());
///     }
/// }
/// assert_eq!(pool.len(), 2); // one cluster per kind, reused across runs
/// ```
#[derive(Default)]
pub struct SessionPool {
    sessions: std::collections::BTreeMap<(ProtocolKind, usize), Session>,
}

impl SessionPool {
    /// An empty pool; sessions are built on first request.
    pub fn new() -> SessionPool {
        SessionPool::default()
    }

    /// The session for `(kind, n)`, building it on first use.
    pub fn session(&mut self, kind: ProtocolKind, n: usize) -> &mut Session {
        self.sessions.entry((kind, n)).or_insert_with(|| Session::new(kind, n))
    }

    /// Number of distinct clusters built so far.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Has no session been built yet?
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_scenario;
    use ptp_protocols::TraceMode;
    use ptp_simnet::{DelayModel, SiteId};

    #[test]
    fn session_matches_one_shot_for_every_kind() {
        let s = Scenario::new(4)
            .transient_partition(vec![SiteId(2), SiteId(3)], 2500, 7500)
            .delay(DelayModel::Uniform { seed: 42, min: 1, max: 1000 });
        for kind in ProtocolKind::ALL {
            let mut session = Session::new(kind, 4);
            // Run twice through the same session: the second (warm) run must
            // match the fresh one-shot in every field.
            let _ = session.run_with(&s, &RunOptions::recording());
            let warm = session.run_with(&s, &RunOptions::recording());
            let fresh = run_scenario(kind, &s);
            assert_eq!(warm.verdict, fresh.verdict, "{}", kind.name());
            assert_eq!(warm.outcomes, fresh.outcomes, "{}", kind.name());
            assert_eq!(warm.trace.events(), fresh.trace.events(), "{}", kind.name());
            assert_eq!(warm.report.counters, fresh.report.counters, "{}", kind.name());
            assert_eq!(warm.report.events, fresh.report.events, "{}", kind.name());
        }
    }

    #[test]
    fn session_runs_interleaved_shapes() {
        // Partitioned, clean, multiple, transient — buffer reuse across
        // shape changes must not leak state between runs.
        let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
        let partitioned = Scenario::new(3).partition_g2(vec![SiteId(2)], 2500);
        let clean = Scenario::new(3);
        let transient = Scenario::new(3).transient_partition(vec![SiteId(1)], 1000, 9000);
        for s in [&partitioned, &clean, &transient, &clean, &partitioned] {
            let r = session.run(s);
            assert!(r.verdict.is_resilient(), "{:?}", r.verdict);
            let fresh =
                crate::run::run_scenario_opts(ProtocolKind::HuangLi3pc, s, &RunOptions::new());
            assert_eq!(r.verdict, fresh.verdict);
            assert_eq!(r.outcomes, fresh.outcomes);
        }
    }

    #[test]
    fn verdict_path_matches_full_path() {
        let s = Scenario::new(3).partition_g2(vec![SiteId(2)], 2100);
        let mut session = Session::new(ProtocolKind::Plain2pc, 3);
        let v = session.verdict(&s, &RunOptions::new());
        let full = session.run(&s);
        assert_eq!(v, full.verdict);
        assert!(matches!(v, Verdict::Blocked { .. }));
    }

    #[test]
    fn default_run_skips_the_trace() {
        let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
        let quiet = session.run(&Scenario::new(3));
        assert!(quiet.trace.is_empty());
        let recorded =
            session.run_with(&Scenario::new(3), &RunOptions::new().trace(TraceMode::Record));
        assert!(!recorded.trace.is_empty());
        assert_eq!(quiet.report.counters, recorded.report.counters);
    }

    #[test]
    #[should_panic(expected = "sites")]
    fn wrong_cluster_size_panics() {
        let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
        let _ = session.run(&Scenario::new(4));
    }

    #[test]
    fn session_pool_builds_each_cluster_once_and_matches_one_shot() {
        let mut pool = SessionPool::new();
        assert!(pool.is_empty());
        let scenarios = [Scenario::new(3).partition_g2(vec![SiteId(2)], 2500), Scenario::new(3)];
        for kind in [ProtocolKind::HuangLi3pc, ProtocolKind::Plain2pc, ProtocolKind::HuangLi3pc] {
            for s in &scenarios {
                let pooled = pool.session(kind, 3).run(s);
                let fresh = run_scenario(kind, s);
                assert_eq!(pooled.verdict, fresh.verdict, "{}", kind.name());
                assert_eq!(pooled.outcomes, fresh.outcomes, "{}", kind.name());
            }
        }
        // Two distinct kinds at one size: exactly two clusters ever built.
        assert_eq!(pool.len(), 2);
        let _ = pool.session(ProtocolKind::HuangLi3pc, 4);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn vote_changes_take_effect_across_runs() {
        let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
        let yes = session.run(&Scenario::new(3));
        assert_eq!(yes.verdict, Verdict::AllCommit);
        let no = session.run(&Scenario::new(3).votes(vec![Vote::Yes, Vote::No]));
        assert_eq!(no.verdict, Verdict::AllAbort);
        let yes_again = session.run(&Scenario::new(3));
        assert_eq!(yes_again.verdict, Verdict::AllCommit);
    }
}
