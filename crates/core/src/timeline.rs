//! The unified scenario-timeline DSL.
//!
//! Every fault the workspace can inject — partitions, heals, site crashes
//! and recoveries, degraded-delay windows, and per-envelope
//! duplicate/reorder/drop faults — is expressed once, as a [`Timeline`] of
//! instants in simulator ticks, and *compiled* to each execution layer:
//!
//! * [`Timeline::scenario`] lowers to the discrete-event simulator's
//!   [`Scenario`] (a [`PartitionSchedule`], `FailureSpec`s,
//!   `DegradeWindow`s and `EnvelopeFault`s), for [`crate::Session`] and
//!   the sweep machinery;
//! * [`Timeline::live_faults`] lowers to [`ptp_livenet::LiveFaults`] — the
//!   router schedules consumed by both `ptp-livenet`'s protocol harness
//!   (`run_live_with`) and `ptp-live`'s threaded shard server
//!   (`LiveOptions::with_faults`), with ticks mapped onto the wall clock
//!   through the configured `T`.
//!
//! One timeline value therefore drives all three backends; the
//! compiler-equivalence tests pin that a single-episode timeline reproduces
//! the legacy `PartitionShape::Simple` path cell-for-cell.
//!
//! Timelines are built with [`ScenarioBuilder`]:
//!
//! ```
//! use ptp_core::scenario::ScenarioBuilder;
//! use ptp_core::{ProtocolKind, Session};
//! use ptp_simnet::SiteId;
//!
//! // Slave 2 secedes at tick 1500; connectivity returns at 6000.
//! let timeline = ScenarioBuilder::new(3)
//!     .at(1500)
//!     .partition(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)]])
//!     .at(6000)
//!     .heal()
//!     .build();
//!
//! let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
//! let result = session.run(&timeline.scenario());
//! assert!(result.verdict.is_atomic());
//! ```

use crate::scenario::{PartitionSchedule, Scenario};
use ptp_livenet::{
    LiveCrash, LiveDegrade, LiveEnvAction, LiveEnvFault, LiveEpisode, LiveFaults, LivePartition,
};
use ptp_simnet::{
    DegradeWindow, DelayModel, EnvelopeAction, EnvelopeFault, EnvelopeMatch, FailureSpec,
    PartitionEngine, PartitionSpec, SimDuration, SimTime, SiteId,
};
use std::time::Duration;

/// A timeline lowered for the `ptp-ddb` database backend: the fault inputs
/// a `DbCluster` (or `ShardCluster`) accepts. Degrade windows and envelope
/// faults have no database-cluster counterpart and are dropped by the
/// lowering — campaign configs that audit at this backend should sample
/// partitions and crashes only.
#[derive(Debug, Clone, Default)]
pub struct DbFaults {
    /// The partition episode schedule, if any partition events exist.
    pub partition: Option<PartitionEngine>,
    /// Crash (and crash/recover) specs.
    pub failures: Vec<FailureSpec>,
}

/// One kind of instantaneous fault transition on a [`Timeline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineEvent {
    /// The site halts: it neither sends nor receives, and its timers stop.
    Crash(SiteId),
    /// The crashed site resumes processing.
    Recover(SiteId),
    /// The sites regroup into the listed connectivity groups. Every site
    /// must appear in exactly one group, so the simulator and live
    /// lowerings (which treat unlisted sites differently) agree.
    Partition(Vec<Vec<SiteId>>),
    /// Full connectivity returns and any open degraded-delay window ends.
    Heal,
    /// Per-leg delays start sampling from `min..=max` ticks instead of the
    /// healthy band, until the next [`TimelineEvent::Heal`] or
    /// [`TimelineEvent::Degrade`].
    Degrade {
        /// Slowest-band lower bound, in ticks (≥ 1).
        min: u64,
        /// Slowest-band upper bound, in ticks.
        max: u64,
    },
}

/// A [`TimelineEvent`] pinned to an instant (in simulator ticks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// When the transition happens, in ticks since the run starts.
    pub at: u64,
    /// What happens.
    pub event: TimelineEvent,
}

/// A validated fault timeline: the single source of truth a scenario's
/// faults are compiled from. Built by [`ScenarioBuilder::build`]; consumed
/// by [`Timeline::scenario`] (simulator) and [`Timeline::live_faults`]
/// (both thread-backed runtimes).
///
/// # Examples
///
/// The same timeline value lowers to every backend:
///
/// ```
/// use ptp_core::scenario::ScenarioBuilder;
/// use ptp_simnet::SiteId;
/// use std::time::Duration;
///
/// let timeline = ScenarioBuilder::new(4)
///     .at(1000)
///     .degrade(800..=1000)
///     .at(2000)
///     .partition(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2), SiteId(3)]])
///     .at(5000)
///     .heal()
///     .build();
///
/// let sim = timeline.scenario(); // discrete-event backend
/// assert_eq!(sim.degrades.len(), 1);
///
/// let live = timeline.live_faults(Duration::from_millis(10)); // thread backends
/// assert_eq!(live.partition.as_ref().unwrap().episodes().len(), 1);
/// assert_eq!(live.degrades.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Cluster size (site 0 is the master).
    pub n: usize,
    /// Ticks per `T`.
    pub t_unit: u64,
    /// Simulation horizon, in units of `T`.
    pub horizon_t: u64,
    /// The fault transitions, in time order.
    pub events: Vec<TimedEvent>,
    /// Envelope-level faults, armed for the whole run.
    pub env_faults: Vec<EnvelopeFault>,
}

/// Fluent builder for [`Timeline`]s: `.at(t)` opens a cursor on an instant,
/// each fault verb returns the builder, and [`ScenarioBuilder::build`]
/// validates the whole schedule at once.
///
/// # Examples
///
/// ```
/// use ptp_core::scenario::ScenarioBuilder;
/// use ptp_simnet::{EnvelopeMatch, SiteId};
///
/// let timeline = ScenarioBuilder::new(3)
///     .at(500)
///     .crash(SiteId(2))
///     .at(4500)
///     .recover(SiteId(2))
///     .duplicate(EnvelopeMatch::kind("xact"), 400)
///     .build();
/// assert_eq!(timeline.events.len(), 2);
/// assert_eq!(timeline.env_faults.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    n: usize,
    t_unit: u64,
    horizon_t: u64,
    events: Vec<TimedEvent>,
    env_faults: Vec<EnvelopeFault>,
}

/// The cursor [`ScenarioBuilder::at`] opens: each verb stamps one event at
/// the cursor's instant and hands the builder back.
#[derive(Debug)]
pub struct At {
    builder: ScenarioBuilder,
    at: u64,
}

impl ScenarioBuilder {
    /// A timeline over `n` sites with the workspace defaults: 1000 ticks
    /// per `T`, a 100 `T` horizon, no faults.
    pub fn new(n: usize) -> ScenarioBuilder {
        assert!(n >= 2, "a cluster needs at least two sites");
        ScenarioBuilder {
            n,
            t_unit: 1000,
            horizon_t: 100,
            events: Vec::new(),
            env_faults: Vec::new(),
        }
    }

    /// Sets the tick count of one `T`.
    pub fn t_unit(mut self, t_unit: u64) -> ScenarioBuilder {
        assert!(t_unit >= 1);
        self.t_unit = t_unit;
        self
    }

    /// Sets the horizon, in units of `T`.
    pub fn horizon_t(mut self, horizon_t: u64) -> ScenarioBuilder {
        assert!(horizon_t >= 1);
        self.horizon_t = horizon_t;
        self
    }

    /// Opens a cursor at tick `t`; the next verb stamps its event there.
    pub fn at(self, t: u64) -> At {
        At { builder: self, at: t }
    }

    /// Arms a raw envelope-level fault for the whole run.
    pub fn inject(mut self, fault: EnvelopeFault) -> ScenarioBuilder {
        self.env_faults.push(fault);
        self
    }

    /// Duplicates matched sends: the clone lands `after_ticks` past the
    /// original's delivery, carrying the same message id.
    pub fn duplicate(self, matches: EnvelopeMatch, after_ticks: u64) -> ScenarioBuilder {
        self.inject(EnvelopeFault::duplicate(matches, SimDuration(after_ticks)))
    }

    /// Reorders matched sends past later traffic by delaying them
    /// `by_ticks` beyond their sampled delay.
    pub fn reorder(self, matches: EnvelopeMatch, by_ticks: u64) -> ScenarioBuilder {
        self.inject(EnvelopeFault::delay(matches, SimDuration(by_ticks)))
    }

    /// Silently loses matched sends (no undeliverable bounce — this is
    /// outside the paper's optimistic model, for robustness probing).
    pub fn drop_matching(self, matches: EnvelopeMatch) -> ScenarioBuilder {
        self.inject(EnvelopeFault::drop(matches))
    }

    /// Validates the event schedule and freezes it into a [`Timeline`],
    /// reporting (rather than panicking on) an invalid schedule — the
    /// entry point the campaign shrinker uses to discard candidate
    /// timelines that mutation made ill-formed.
    pub fn try_build(mut self) -> Result<Timeline, String> {
        self.events.sort_by_key(|e| e.at); // stable: same-instant order kept
        Timeline::try_new(self.n, self.t_unit, self.horizon_t, self.events, self.env_faults)
    }

    /// Validates the event schedule and freezes it into a [`Timeline`].
    ///
    /// # Panics
    ///
    /// Panics if a partition does not list every site exactly once or has
    /// fewer than two groups; if a heal has no open partition or degrade
    /// window to end; if a site is crashed twice or recovered while up; or
    /// if a regroup/redegrade lands at the same instant its predecessor
    /// started (zero-length episodes are meaningless).
    pub fn build(self) -> Timeline {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

macro_rules! ensure {
    ($cond:expr, $($msg:tt)+) => {
        if !$cond {
            return Err(format!($($msg)+));
        }
    };
}

impl Timeline {
    /// Validates pre-sorted `events` into a [`Timeline`]. Prefer
    /// [`ScenarioBuilder`]; this is the checked back door the campaign
    /// shrinker rebuilds mutated candidates through.
    pub fn try_new(
        n: usize,
        t_unit: u64,
        horizon_t: u64,
        events: Vec<TimedEvent>,
        env_faults: Vec<EnvelopeFault>,
    ) -> Result<Timeline, String> {
        ensure!(n >= 2, "a cluster needs at least two sites");
        ensure!(t_unit >= 1 && horizon_t >= 1, "t_unit and horizon must be positive");
        ensure!(events.windows(2).all(|w| w[0].at <= w[1].at), "events must be in time order");
        let mut open_partition: Option<u64> = None;
        let mut open_degrade: Option<u64> = None;
        let mut down: Vec<SiteId> = Vec::new();
        for TimedEvent { at, event } in &events {
            match event {
                TimelineEvent::Crash(site) => {
                    ensure!(site.index() < n, "crash of site outside the cluster");
                    ensure!(!down.contains(site), "site {site} crashed while already down");
                    down.push(*site);
                }
                TimelineEvent::Recover(site) => {
                    let pos = down.iter().position(|s| s == site);
                    match pos {
                        Some(pos) => {
                            down.remove(pos);
                        }
                        None => return Err(format!("site {site} recovered while up")),
                    }
                }
                TimelineEvent::Partition(groups) => {
                    ensure!(groups.len() >= 2, "a partition needs at least two groups");
                    let mut seen = vec![false; n];
                    for site in groups.iter().flatten() {
                        let i = site.index();
                        ensure!(i < n, "partition group lists site {site} outside the cluster");
                        ensure!(!seen[i], "partition groups list site {site} twice");
                        seen[i] = true;
                    }
                    ensure!(
                        seen.iter().all(|s| *s),
                        "a partition must list every site exactly once"
                    );
                    if let Some(start) = open_partition {
                        ensure!(
                            start < *at,
                            "a regroup must come strictly after the previous split"
                        );
                    }
                    open_partition = Some(*at);
                }
                TimelineEvent::Heal => {
                    ensure!(
                        open_partition.is_some() || open_degrade.is_some(),
                        "heal at tick {at} with no open partition or degrade window"
                    );
                    for start in [open_partition.take(), open_degrade.take()].into_iter().flatten()
                    {
                        ensure!(start < *at, "a heal must come strictly after the split it ends");
                    }
                }
                TimelineEvent::Degrade { min, max } => {
                    ensure!(*min >= 1 && min <= max, "degraded band must satisfy 1 <= min <= max");
                    if let Some(start) = open_degrade {
                        ensure!(
                            start < *at,
                            "a redegrade must come strictly after the previous one"
                        );
                    }
                    open_degrade = Some(*at);
                }
            }
        }
        Ok(Timeline { n, t_unit, horizon_t, events, env_faults })
    }
}

impl At {
    /// The site halts at this instant.
    pub fn crash(mut self, site: SiteId) -> ScenarioBuilder {
        self.builder.events.push(TimedEvent { at: self.at, event: TimelineEvent::Crash(site) });
        self.builder
    }

    /// The crashed site resumes at this instant.
    pub fn recover(mut self, site: SiteId) -> ScenarioBuilder {
        self.builder.events.push(TimedEvent { at: self.at, event: TimelineEvent::Recover(site) });
        self.builder
    }

    /// The sites regroup into `groups` at this instant (every site listed
    /// exactly once; an open partition is replaced).
    pub fn partition(mut self, groups: Vec<Vec<SiteId>>) -> ScenarioBuilder {
        self.builder
            .events
            .push(TimedEvent { at: self.at, event: TimelineEvent::Partition(groups) });
        self.builder
    }

    /// Full connectivity returns at this instant (also ends any open
    /// degraded-delay window).
    pub fn heal(mut self) -> ScenarioBuilder {
        self.builder.events.push(TimedEvent { at: self.at, event: TimelineEvent::Heal });
        self.builder
    }

    /// Per-leg delays degrade to the given tick band at this instant.
    pub fn degrade(mut self, band: std::ops::RangeInclusive<u64>) -> ScenarioBuilder {
        let (min, max) = (*band.start(), *band.end());
        self.builder
            .events
            .push(TimedEvent { at: self.at, event: TimelineEvent::Degrade { min, max } });
        self.builder
    }
}

impl Timeline {
    /// Compiles the timeline to the discrete-event simulator's [`Scenario`]
    /// — the lowering behind [`crate::Session`], [`crate::run_scenario`]
    /// and the sweep machinery. Partition events become a
    /// [`PartitionSchedule`], crash/recover pairs become `FailureSpec`s,
    /// degrade events become `DegradeWindow`s, and envelope faults pass
    /// through unchanged.
    pub fn scenario(&self) -> Scenario {
        let mut schedule = PartitionSchedule::new();
        let mut open_partition: Option<(u64, Vec<Vec<SiteId>>)> = None;
        let mut open_degrade: Option<(u64, u64, u64)> = None;
        let mut degrades: Vec<DegradeWindow> = Vec::new();
        let mut open_crashes: Vec<(SiteId, u64)> = Vec::new();
        let mut failures: Vec<FailureSpec> = Vec::new();

        for TimedEvent { at, event } in &self.events {
            match event {
                TimelineEvent::Crash(site) => open_crashes.push((*site, *at)),
                TimelineEvent::Recover(site) => {
                    let pos = open_crashes
                        .iter()
                        .position(|(s, _)| s == site)
                        .expect("validated: recover pairs with a crash");
                    let (site, crashed_at) = open_crashes.remove(pos);
                    failures.push(FailureSpec::crash_recover(
                        site,
                        SimTime(crashed_at),
                        SimTime(*at),
                    ));
                }
                TimelineEvent::Partition(groups) => {
                    if let Some((start, prev)) = open_partition.take() {
                        schedule = schedule.episode(prev, start, Some(*at));
                    }
                    open_partition = Some((*at, groups.clone()));
                }
                TimelineEvent::Heal => {
                    if let Some((start, prev)) = open_partition.take() {
                        schedule = schedule.episode(prev, start, Some(*at));
                    }
                    if let Some((from, min, max)) = open_degrade.take() {
                        degrades.push(DegradeWindow::new(
                            SimTime(from),
                            Some(SimTime(*at)),
                            min,
                            max,
                        ));
                    }
                }
                TimelineEvent::Degrade { min, max } => {
                    if let Some((from, pmin, pmax)) = open_degrade.take() {
                        degrades.push(DegradeWindow::new(
                            SimTime(from),
                            Some(SimTime(*at)),
                            pmin,
                            pmax,
                        ));
                    }
                    open_degrade = Some((*at, *min, *max));
                }
            }
        }
        if let Some((start, groups)) = open_partition {
            schedule = schedule.episode(groups, start, None);
        }
        if let Some((from, min, max)) = open_degrade {
            degrades.push(DegradeWindow::new(SimTime(from), None, min, max));
        }
        for (site, at) in open_crashes {
            failures.push(FailureSpec::crash(site, SimTime(at)));
        }

        let mut scenario = Scenario::new(self.n).delay(DelayModel::Fixed(self.t_unit));
        scenario.t_unit = self.t_unit;
        scenario.horizon_t = self.horizon_t;
        if !schedule.is_empty() {
            scenario = scenario.partition_schedule(schedule);
        }
        scenario.failures = failures;
        scenario.env_faults = self.env_faults.clone();
        scenario.degrades = degrades;
        scenario
    }

    /// Maps a tick count onto the wall clock: `t` wall-time per `t_unit`
    /// ticks, the same `T`-relative timing the simulator uses.
    pub fn wall(&self, ticks: u64, t: Duration) -> Duration {
        Duration::from_nanos(
            (t.as_nanos().saturating_mul(ticks as u128) / self.t_unit as u128) as u64,
        )
    }

    /// Compiles the timeline to [`LiveFaults`] for the thread-backed
    /// runtimes — `ptp_livenet::run_live_with` and
    /// `ptp-live`'s `LiveOptions::with_faults` — with every tick instant
    /// mapped onto the wall clock through the run's `T` (see
    /// [`Timeline::wall`]).
    pub fn live_faults(&self, t: Duration) -> LiveFaults {
        let mut episodes: Vec<LiveEpisode> = Vec::new();
        let mut open_partition: Option<(u64, Vec<Vec<SiteId>>)> = None;
        let mut open_degrade: Option<(u64, u64, u64)> = None;
        let mut degrades: Vec<LiveDegrade> = Vec::new();
        let mut open_crashes: Vec<(SiteId, u64)> = Vec::new();
        let mut crashes: Vec<LiveCrash> = Vec::new();

        for TimedEvent { at, event } in &self.events {
            match event {
                TimelineEvent::Crash(site) => open_crashes.push((*site, *at)),
                TimelineEvent::Recover(site) => {
                    let pos = open_crashes
                        .iter()
                        .position(|(s, _)| s == site)
                        .expect("validated: recover pairs with a crash");
                    let (site, crashed_at) = open_crashes.remove(pos);
                    crashes.push(LiveCrash::crash_recover(
                        site,
                        self.wall(crashed_at, t),
                        self.wall(*at, t),
                    ));
                }
                TimelineEvent::Partition(groups) => {
                    if let Some((start, prev)) = open_partition.take() {
                        episodes.push(LiveEpisode {
                            from: self.wall(start, t),
                            until: Some(self.wall(*at, t)),
                            groups: prev,
                        });
                    }
                    open_partition = Some((*at, groups.clone()));
                }
                TimelineEvent::Heal => {
                    if let Some((start, prev)) = open_partition.take() {
                        episodes.push(LiveEpisode {
                            from: self.wall(start, t),
                            until: Some(self.wall(*at, t)),
                            groups: prev,
                        });
                    }
                    if let Some((from, min, max)) = open_degrade.take() {
                        degrades.push(LiveDegrade::new(
                            self.wall(from, t),
                            Some(self.wall(*at, t)),
                            self.wall(min, t),
                            self.wall(max, t),
                        ));
                    }
                }
                TimelineEvent::Degrade { min, max } => {
                    if let Some((from, pmin, pmax)) = open_degrade.take() {
                        degrades.push(LiveDegrade::new(
                            self.wall(from, t),
                            Some(self.wall(*at, t)),
                            self.wall(pmin, t),
                            self.wall(pmax, t),
                        ));
                    }
                    open_degrade = Some((*at, *min, *max));
                }
            }
        }
        if let Some((start, groups)) = open_partition {
            episodes.push(LiveEpisode { from: self.wall(start, t), until: None, groups });
        }
        if let Some((from, min, max)) = open_degrade {
            degrades.push(LiveDegrade::new(
                self.wall(from, t),
                None,
                self.wall(min, t),
                self.wall(max, t),
            ));
        }
        for (site, at) in open_crashes {
            crashes.push(LiveCrash::crash(site, self.wall(at, t)));
        }

        let env_faults = self
            .env_faults
            .iter()
            .map(|f| LiveEnvFault {
                matches: f.matches,
                action: match f.action {
                    EnvelopeAction::Drop => LiveEnvAction::Drop,
                    EnvelopeAction::Duplicate { after } => {
                        LiveEnvAction::Duplicate { after: self.wall(after.0, t) }
                    }
                    EnvelopeAction::Delay { by } => LiveEnvAction::Delay { by: self.wall(by.0, t) },
                },
            })
            .collect();

        LiveFaults {
            partition: (!episodes.is_empty()).then(|| LivePartition::new(episodes)),
            crashes,
            degrades,
            env_faults,
        }
    }

    /// Compiles the timeline to [`DbFaults`] for the database clusters
    /// (`ptp_ddb::DbCluster`, `ptp_shard::ShardCluster`): partition events
    /// become a [`PartitionEngine`] episode schedule and crash/recover
    /// pairs become [`FailureSpec`]s. Degrade windows and envelope faults
    /// are dropped (see [`DbFaults`]).
    pub fn db_faults(&self) -> DbFaults {
        let mut episodes: Vec<PartitionSpec> = Vec::new();
        let mut open_partition: Option<(u64, Vec<Vec<SiteId>>)> = None;
        let mut open_crashes: Vec<(SiteId, u64)> = Vec::new();
        let mut failures: Vec<FailureSpec> = Vec::new();

        for TimedEvent { at, event } in &self.events {
            match event {
                TimelineEvent::Crash(site) => open_crashes.push((*site, *at)),
                TimelineEvent::Recover(site) => {
                    let pos = open_crashes
                        .iter()
                        .position(|(s, _)| s == site)
                        .expect("validated: recover pairs with a crash");
                    let (site, crashed_at) = open_crashes.remove(pos);
                    failures.push(FailureSpec::crash_recover(
                        site,
                        SimTime(crashed_at),
                        SimTime(*at),
                    ));
                }
                TimelineEvent::Partition(groups) => {
                    if let Some((start, prev)) = open_partition.take() {
                        episodes.push(PartitionSpec {
                            at: SimTime(start),
                            groups: prev,
                            heal_at: Some(SimTime(*at)),
                        });
                    }
                    open_partition = Some((*at, groups.clone()));
                }
                TimelineEvent::Heal => {
                    if let Some((start, prev)) = open_partition.take() {
                        episodes.push(PartitionSpec {
                            at: SimTime(start),
                            groups: prev,
                            heal_at: Some(SimTime(*at)),
                        });
                    }
                }
                TimelineEvent::Degrade { .. } => {}
            }
        }
        if let Some((start, groups)) = open_partition {
            episodes.push(PartitionSpec { at: SimTime(start), groups, heal_at: None });
        }
        for (site, at) in open_crashes {
            failures.push(FailureSpec::crash(site, SimTime(at)));
        }

        DbFaults {
            partition: (!episodes.is_empty()).then(|| PartitionEngine::new(episodes)),
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PartitionShape;

    fn two_groups(n: u16, g2: &[u16]) -> Vec<Vec<SiteId>> {
        let g2: Vec<SiteId> = g2.iter().copied().map(SiteId).collect();
        let g1 = (0..n).map(SiteId).filter(|s| !g2.contains(s)).collect();
        vec![g1, g2]
    }

    #[test]
    fn builder_orders_events_by_time() {
        let tl =
            ScenarioBuilder::new(3).at(6000).heal().at(1500).partition(two_groups(3, &[2])).build();
        assert_eq!(tl.events[0].at, 1500);
        assert_eq!(tl.events[1].at, 6000);
    }

    #[test]
    fn sim_lowering_builds_the_schedule_shape() {
        let tl = ScenarioBuilder::new(4)
            .at(1500)
            .partition(two_groups(4, &[2, 3]))
            .at(6000)
            .heal()
            .build();
        let s = tl.scenario();
        match &s.partition {
            PartitionShape::Schedule(schedule) => {
                assert_eq!(schedule.len(), 1);
                let e = &schedule.episodes()[0];
                assert_eq!((e.at, e.heal_at), (1500, Some(6000)));
                assert_eq!(e.groups, two_groups(4, &[2, 3]));
            }
            other => panic!("expected a schedule, got {other:?}"),
        }
    }

    #[test]
    fn regroup_closes_the_previous_episode() {
        let tl = ScenarioBuilder::new(3)
            .at(1000)
            .partition(two_groups(3, &[2]))
            .at(3000)
            .partition(two_groups(3, &[1]))
            .build();
        let s = tl.scenario();
        let PartitionShape::Schedule(schedule) = &s.partition else { panic!() };
        assert_eq!(schedule.len(), 2);
        assert_eq!(schedule.episodes()[0].heal_at, Some(3000));
        assert_eq!(schedule.episodes()[1].heal_at, None);
    }

    #[test]
    fn heal_ends_partitions_and_degrades_together() {
        let tl = ScenarioBuilder::new(3)
            .at(500)
            .degrade(800..=1000)
            .at(1000)
            .partition(two_groups(3, &[2]))
            .at(4000)
            .heal()
            .build();
        let s = tl.scenario();
        assert_eq!(s.degrades.len(), 1);
        assert!(s.degrades[0].covers(SimTime(3999)));
        assert!(!s.degrades[0].covers(SimTime(4000)));
    }

    #[test]
    fn crash_recover_pairs_into_failure_specs() {
        let tl = ScenarioBuilder::new(4)
            .at(500)
            .crash(SiteId(3))
            .at(4500)
            .recover(SiteId(3))
            .at(7000)
            .crash(SiteId(2))
            .build();
        let s = tl.scenario();
        assert_eq!(s.failures.len(), 2);
        assert_eq!(
            s.failures[0],
            FailureSpec::crash_recover(SiteId(3), SimTime(500), SimTime(4500))
        );
        assert_eq!(s.failures[1], FailureSpec::crash(SiteId(2), SimTime(7000)));
    }

    #[test]
    fn live_lowering_maps_ticks_onto_the_wall_clock() {
        let t = Duration::from_millis(10); // 1000 ticks = 10ms, 1 tick = 10µs
        let tl = ScenarioBuilder::new(3)
            .at(1500)
            .partition(two_groups(3, &[2]))
            .at(6000)
            .heal()
            .at(7000)
            .crash(SiteId(1))
            .duplicate(EnvelopeMatch::kind("xact"), 400)
            .build();
        let faults = tl.live_faults(t);
        let p = faults.partition.expect("one episode");
        assert_eq!(p.episodes()[0].from, Duration::from_millis(15));
        assert_eq!(p.episodes()[0].until, Some(Duration::from_millis(60)));
        assert_eq!(faults.crashes.len(), 1);
        assert_eq!(faults.crashes[0].after, Duration::from_millis(70));
        assert_eq!(faults.env_faults.len(), 1);
        match faults.env_faults[0].action {
            LiveEnvAction::Duplicate { after } => assert_eq!(after, Duration::from_micros(4000)),
            other => panic!("expected a duplicate, got {other:?}"),
        }
    }

    #[test]
    fn envelope_injections_pass_through_to_the_sim() {
        let tl = ScenarioBuilder::new(3)
            .duplicate(EnvelopeMatch::kind("xact"), 400)
            .reorder(EnvelopeMatch::kind("yes").nth(0), 2000)
            .drop_matching(EnvelopeMatch::any().from(SiteId(0)).nth(1))
            .build();
        let s = tl.scenario();
        assert_eq!(s.env_faults.len(), 3);
        assert!(matches!(s.env_faults[0].action, EnvelopeAction::Duplicate { .. }));
        assert!(matches!(s.env_faults[1].action, EnvelopeAction::Delay { .. }));
        assert!(matches!(s.env_faults[2].action, EnvelopeAction::Drop));
    }

    #[test]
    #[should_panic(expected = "every site exactly once")]
    fn partial_cover_partitions_rejected() {
        let _ = ScenarioBuilder::new(4)
            .at(1000)
            .partition(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)]])
            .build();
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_listed_sites_rejected() {
        let _ = ScenarioBuilder::new(3)
            .at(1000)
            .partition(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(1), SiteId(2)]])
            .build();
    }

    #[test]
    #[should_panic(expected = "no open partition")]
    fn stray_heal_rejected() {
        let _ = ScenarioBuilder::new(3).at(1000).heal().build();
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_crash_rejected() {
        let _ = ScenarioBuilder::new(3).at(100).crash(SiteId(2)).at(200).crash(SiteId(2)).build();
    }

    #[test]
    #[should_panic(expected = "recovered while up")]
    fn stray_recover_rejected() {
        let _ = ScenarioBuilder::new(3).at(100).recover(SiteId(2)).build();
    }

    #[test]
    fn timeline_value_is_reusable_across_lowerings() {
        let tl =
            ScenarioBuilder::new(3).at(1500).partition(two_groups(3, &[2])).at(6000).heal().build();
        let a = tl.scenario();
        let b = tl.live_faults(Duration::from_millis(8));
        // Both lowerings observe the same episode boundaries.
        let PartitionShape::Schedule(schedule) = &a.partition else { panic!() };
        let wall = |ticks| tl.wall(ticks, Duration::from_millis(8));
        let live = b.partition.unwrap();
        assert_eq!(live.episodes()[0].from, wall(schedule.episodes()[0].at));
        assert_eq!(live.episodes()[0].until, schedule.episodes()[0].heal_at.map(wall));
    }
}
