//! The ddb participant-pool equivalence property (this PR's tentpole
//! guarantee at the database layer):
//!
//! > A cluster recycling protocol participants through per-site free-lists
//! > produces field-identical [`Metrics`] (and storages, and blocked sets)
//! > to one constructing a participant per transaction, across randomized
//! > workloads, for every [`CommitProtocol`].
//!
//! Workloads randomize transaction count, write sets (drawn from a small
//! key pool so lock conflicts and timeout aborts happen), submission times,
//! delay model, partitions and site crashes, all from a seeded
//! [`SmallRng`] so failures replay bit-for-bit.

use ptp_core::ddb::cluster::{CommitProtocol, DbCluster};
use ptp_core::ddb::site::TxnSpec;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_simnet::rng::SmallRng;
use ptp_simnet::{DelayModel, FailureSpec, PartitionEngine, PartitionSpec, SimTime, SiteId};
use std::collections::BTreeMap;

const RUNS_PER_PROTOCOL: usize = 50;

/// One deterministic cluster specification, buildable any number of times.
struct ClusterSpec {
    n: usize,
    workload: Vec<(u64, TxnSpec)>,
    delay: DelayModel,
    partition: Option<PartitionSpec>,
    failure: Option<FailureSpec>,
}

impl ClusterSpec {
    fn random(rng: &mut SmallRng) -> ClusterSpec {
        let n = 3 + rng.gen_range(0..=1) as usize;
        let txns = 1 + rng.gen_range(0..=7) as u32;
        let workload = (0..txns)
            .map(|i| {
                let at = rng.gen_range(0..=20_000);
                let mut writes = BTreeMap::new();
                for site in 1..n as u16 {
                    if rng.gen_range(0..=3) == 0 {
                        continue; // this site sits the transaction out
                    }
                    let key = format!("k{}", rng.gen_range(0..=2));
                    writes.insert(
                        site,
                        vec![WriteOp {
                            key: Key::from(key),
                            value: Value::from_u64(rng.gen_range(0..=999)),
                        }],
                    );
                }
                (at, TxnSpec { id: TxnId(i + 1), writes })
            })
            .collect();

        let delay = match rng.gen_range(0..=2) {
            0 => DelayModel::Fixed(1 + rng.gen_range(0..=999)),
            1 => DelayModel::Uniform { seed: rng.gen_range(0..=9_999), min: 1, max: 1000 },
            _ => DelayModel::Fixed(700),
        };

        let partition = (rng.gen_range(0..=2) == 0).then(|| {
            let cut = SiteId(1 + rng.gen_range(0..=(n as u64 - 2)) as u16);
            let g1 = (0..n as u16).map(SiteId).filter(|s| *s != cut).collect();
            let at = SimTime(rng.gen_range(0..=12_000));
            match rng.gen_range(0..=1) {
                0 => PartitionSpec::simple(at, g1, vec![cut]),
                _ => PartitionSpec::transient(
                    at,
                    g1,
                    vec![cut],
                    at + ptp_simnet::SimDuration(500 + rng.gen_range(0..=8_000)),
                ),
            }
        });

        let failure = (rng.gen_range(0..=3) == 0).then(|| {
            let site = SiteId(1 + rng.gen_range(0..=(n as u64 - 2)) as u16);
            let at = SimTime(500 + rng.gen_range(0..=8_000));
            if rng.gen_range(0..=1) == 0 {
                FailureSpec::crash(site, at)
            } else {
                FailureSpec::crash_recover(site, at, at + ptp_simnet::SimDuration(10_000))
            }
        });

        ClusterSpec { n, workload, delay, partition, failure }
    }

    fn build(&self, protocol: CommitProtocol, pooled: bool) -> DbCluster {
        let mut cluster = DbCluster::new(self.n, protocol).delay(self.delay.clone());
        if !pooled {
            cluster = cluster.construct_per_txn();
        }
        for site in 1..self.n as u16 {
            cluster = cluster.seed(site, Key::from(format!("k{site}")), Value::from_u64(0));
        }
        for (at, spec) in &self.workload {
            cluster = cluster.submit(*at, spec.clone());
        }
        if let Some(p) = &self.partition {
            cluster = cluster.partition(PartitionEngine::new(vec![p.clone()]));
        }
        if let Some(f) = self.failure {
            cluster = cluster.fail(f);
        }
        cluster
    }
}

#[test]
fn pooled_cluster_matches_construct_per_txn_for_every_protocol() {
    for protocol in
        [CommitProtocol::TwoPhase, CommitProtocol::HuangLi, CommitProtocol::QuorumMajority]
    {
        // The RNG seed is fixed per protocol so every failure is replayable.
        let mut rng = SmallRng::seed_from_u64(0xD0B ^ protocol.name().len() as u64);
        for i in 0..RUNS_PER_PROTOCOL {
            let spec = ClusterSpec::random(&mut rng);
            let pooled = spec.build(protocol, true).run();
            let per_txn = spec.build(protocol, false).run();
            let tag = format!("{} run #{i}", protocol.name());
            assert_eq!(pooled.metrics, per_txn.metrics, "{tag}: metrics");
            assert_eq!(pooled.storages, per_txn.storages, "{tag}: storages");
            assert_eq!(pooled.blocked, per_txn.blocked, "{tag}: blocked sets");
            assert_eq!(pooled.trace.events(), per_txn.trace.events(), "{tag}: trace");
            assert_eq!(pooled.report.events, per_txn.report.events, "{tag}: event count");
            assert!(
                pooled.participants_constructed <= per_txn.participants_constructed,
                "{tag}: pooling constructed more ({} > {})",
                pooled.participants_constructed,
                per_txn.participants_constructed
            );
        }
    }
}
