//! Live-thread invariant suite: every protocol kind on OS threads, under
//! crashes, partitions, and partition-plus-heal.
//!
//! The simulator proves these properties exhaustively over discrete
//! schedules; this suite checks that they survive real thread scheduling,
//! real clocks, and the bounded-but-random delays of the live router. Live
//! runs are nondeterministic, so each scenario runs a few times and asserts
//! *invariants* — atomic consistency always, termination where the paper
//! guarantees it — rather than replaying a pinned trace.

use ptp_core::livenet::{run_live, run_live_faulty, LiveConfig, LiveCrash, LivePartition};
use ptp_core::protocols::api::Vote;
use ptp_core::protocols::clusters::{huang_li_3pc_cluster_any, huang_li_4pc_cluster_any};
use ptp_core::protocols::quorum::{quorum_cluster_any, QuorumConfig};
use ptp_core::protocols::termination::TerminationVariant;
use ptp_core::protocols::AnyParticipant;
use ptp_simnet::SiteId;
use std::time::Duration;

const T: Duration = Duration::from_millis(8);
const REPS: usize = 2;

/// A named, repeatable live-cluster recipe.
type ClusterRecipe = (&'static str, Box<dyn Fn() -> Vec<AnyParticipant>>);

/// The four protocol kinds of the workspace, as live clusters.
fn clusters(n: usize) -> Vec<ClusterRecipe> {
    let votes = vec![Vote::Yes; n - 1];
    let v1 = votes.clone();
    let v2 = votes.clone();
    let v3 = votes.clone();
    let v4 = votes;
    vec![
        (
            "hl-3pc-transient",
            Box::new(move || huang_li_3pc_cluster_any(n, &v1, TerminationVariant::Transient)),
        ),
        (
            "hl-3pc-static",
            Box::new(move || huang_li_3pc_cluster_any(n, &v2, TerminationVariant::Static)),
        ),
        (
            "hl-4pc",
            Box::new(move || huang_li_4pc_cluster_any(n, &v3, TerminationVariant::Transient)),
        ),
        ("quorum-majority", Box::new(move || quorum_cluster_any(QuorumConfig::majority(n), &v4))),
    ]
}

#[test]
fn every_protocol_decides_consistently_without_faults() {
    for (name, cluster) in clusters(4) {
        for rep in 0..REPS {
            let outcome = run_live(cluster(), LiveConfig::with_t(T), None);
            assert!(outcome.consistent(), "{name} rep {rep}: {outcome:?}");
            assert!(outcome.all_decided(), "{name} rep {rep}: {outcome:?}");
        }
    }
}

#[test]
fn every_protocol_survives_a_crashed_slave() {
    let crashed = SiteId(3);
    for (name, cluster) in clusters(4) {
        for rep in 0..REPS {
            let outcome = run_live_faulty(
                cluster(),
                LiveConfig::with_t(T),
                None,
                vec![LiveCrash::crash(crashed, T)],
            );
            assert!(outcome.consistent(), "{name} rep {rep}: {outcome:?}");
            // The survivors must terminate; the crashed site is exempt.
            assert!(outcome.all_decided_except(&[crashed]), "{name} rep {rep}: {outcome:?}");
        }
    }
}

#[test]
fn every_protocol_survives_a_crash_with_recovery() {
    // The site comes back before the run timeout; having missed messages
    // (dropped at the network while down), it must still not contradict
    // the rest — it may stay undecided, the livenet layer models no WAL.
    let crashed = SiteId(2);
    for (name, cluster) in clusters(4) {
        for rep in 0..REPS {
            let outcome = run_live_faulty(
                cluster(),
                LiveConfig::with_t(T),
                None,
                vec![LiveCrash::crash_recover(crashed, T, T * 8)],
            );
            assert!(outcome.consistent(), "{name} rep {rep}: {outcome:?}");
            assert!(outcome.all_decided_except(&[crashed]), "{name} rep {rep}: {outcome:?}");
        }
    }
}

#[test]
fn termination_protocols_decide_through_a_permanent_partition() {
    // A simple partition mid-protocol: the termination protocol decides on
    // both sides (undeliverables return — the optimistic model), for both
    // the static and the transient variant and for 4PC.
    for (name, cluster) in clusters(4) {
        if name == "quorum-majority" {
            continue; // quorum minorities legitimately block; covered below
        }
        for rep in 0..REPS {
            let outcome = run_live(
                cluster(),
                LiveConfig::with_t(T),
                Some(LivePartition::simple(T * 5 / 2, vec![SiteId(2), SiteId(3)], None)),
            );
            assert!(outcome.consistent(), "{name} rep {rep}: {outcome:?}");
            assert!(outcome.all_decided(), "{name} rep {rep}: {outcome:?}");
        }
    }
}

#[test]
fn quorum_majority_side_decides_and_the_minority_stays_safe() {
    for rep in 0..REPS {
        let cluster = quorum_cluster_any(QuorumConfig::majority(5), &[Vote::Yes; 4]);
        let outcome = run_live(
            cluster,
            LiveConfig::with_t(T),
            Some(LivePartition::simple(T * 5 / 2, vec![SiteId(3), SiteId(4)], None)),
        );
        // The two-site minority can reach neither quorum: it must block
        // rather than guess, and whatever the majority decided stands.
        assert!(outcome.consistent(), "rep {rep}: {outcome:?}");
        assert!(outcome.all_decided_except(&[SiteId(3), SiteId(4)]), "rep {rep}: {outcome:?}");
    }
}

#[test]
fn every_protocol_survives_partition_plus_heal() {
    for (name, cluster) in clusters(4) {
        for rep in 0..REPS {
            let outcome = run_live(
                cluster(),
                LiveConfig::with_t(T),
                Some(LivePartition::simple(T * 2, vec![SiteId(1), SiteId(2)], Some(T * 5))),
            );
            assert!(outcome.consistent(), "{name} rep {rep}: {outcome:?}");
            // After the heal every protocol — quorum included — terminates.
            assert!(outcome.all_decided(), "{name} rep {rep}: {outcome:?}");
        }
    }
}

#[test]
fn multi_episode_schedules_stay_consistent() {
    // Split, heal, re-split differently: the generalized LivePartition. The
    // second episode never heals, so termination is only guaranteed for the
    // termination protocols, and consistency for everyone.
    for (name, cluster) in clusters(4) {
        for rep in 0..REPS {
            let outcome = run_live(
                cluster(),
                LiveConfig::with_t(T),
                Some(LivePartition::split_heal_resplit(
                    vec![SiteId(3)],
                    T * 2,
                    T * 5,
                    vec![SiteId(1), SiteId(2)],
                    T * 7,
                )),
            );
            assert!(outcome.consistent(), "{name} rep {rep}: {outcome:?}");
        }
    }
}
