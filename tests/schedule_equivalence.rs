//! Partition-schedule equivalence properties.
//!
//! Two pins keep the new multi-episode schedule machinery honest:
//!
//! 1. a **single-episode** two-group schedule is field-identical (verdict,
//!    per-site outcomes, trace, counters) to the legacy
//!    `PartitionShape::Simple` path — i.e. `PartitionEngine::reset_schedule`
//!    generalizes `reset_single` without changing a single behaviour;
//! 2. **multi-episode** schedules replayed through a reused
//!    [`ptp_core::Session`] match fresh one-shot runs, for every protocol —
//!    buffer recycling across schedule rewrites never leaks state.

use proptest::prelude::*;
use ptp_core::{
    run_scenario_opts, PartitionSchedule, ProtocolKind, RunOptions, Scenario, SessionPool,
};
use ptp_simnet::rng::SmallRng;
use ptp_simnet::{DelayModel, SiteId};

/// The sites `0..n` minus `g2` (G1, master included).
fn complement(n: usize, g2: &[SiteId]) -> Vec<SiteId> {
    (0..n as u16).map(SiteId).filter(|s| !g2.contains(s)).collect()
}

/// Decodes a non-empty proper slave subset from `mask` (wrapped into range).
fn g2_from_mask(n: usize, mask: u64) -> Vec<SiteId> {
    let slaves = n - 1;
    let mask = 1 + mask % ((1u64 << slaves) - 1);
    (0..slaves).filter(|i| mask >> i & 1 == 1).map(|i| SiteId(i as u16 + 1)).collect()
}

/// Field-for-field comparison of two recorded scenario results.
fn assert_results_identical(
    kind: ProtocolKind,
    label: &str,
    a: &ptp_core::ScenarioResult,
    b: &ptp_core::ScenarioResult,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.verdict, &b.verdict, "{} verdict ({})", kind.name(), label);
    prop_assert_eq!(&a.outcomes, &b.outcomes, "{} outcomes ({})", kind.name(), label);
    prop_assert_eq!(a.trace.events(), b.trace.events(), "{} trace ({})", kind.name(), label);
    prop_assert_eq!(&a.report.counters, &b.report.counters, "{} counters ({})", kind.name(), label);
    prop_assert_eq!(a.report.events, b.report.events, "{} event count ({})", kind.name(), label);
    Ok(())
}

/// A randomized valid multi-episode schedule over `n` sites: 1–3 episodes,
/// each regrouping the sites into 2–3 groups (master in group 0), separated
/// by non-overlapping time windows.
fn random_schedule(n: usize, seed: u64) -> PartitionSchedule {
    let mut rng = SmallRng::seed_from_u64(seed);
    let episodes = 1 + rng.gen_range(0..=2) as usize;
    let mut schedule = PartitionSchedule::new();
    let mut t = 250 * rng.gen_range(1..=16); // first split in (0, 4T]
    for e in 0..episodes {
        let group_count = 2 + rng.gen_range(0..=1) as usize;
        let mut groups = vec![Vec::new(); group_count];
        groups[0].push(SiteId(0));
        for site in 1..n as u16 {
            groups[1 + rng.gen_range(0..=(group_count as u64 - 2)) as usize].push(SiteId(site));
        }
        let last = e + 1 == episodes;
        // A final episode heals ~half the time; earlier ones always heal.
        let heal = if last && rng.next_u64() & 1 == 0 {
            None
        } else {
            Some(t + 250 * rng.gen_range(1..=12))
        };
        schedule = schedule.episode(groups, t, heal);
        // Next episode starts at or after the heal (sometimes exactly at
        // it — the seamless-regroup case).
        t = schedule.episodes()[e].heal_at.unwrap_or(t) + 250 * rng.gen_range(0..=8);
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
    #[test]
    fn single_episode_schedule_matches_legacy_simple_path(
        n in 3usize..=5,
        mask in 0u64..1024,
        at_step in 0u64..=16,
        heal_step in prop::option::of(1u64..=12),
        seed in 0u64..1 << 32,
    ) {
        let g2 = g2_from_mask(n, mask);
        let at = at_step * 500;
        let heal_at = heal_step.map(|h| at + h * 500);
        let delay = DelayModel::Uniform { seed, min: 1, max: 1000 };

        let legacy = match heal_at {
            None => Scenario::new(n).partition_g2(g2.clone(), at),
            Some(h) => Scenario::new(n).transient_partition(g2.clone(), at, h),
        }
        .delay(delay.clone());

        let schedule = Scenario::new(n)
            .partition_schedule(
                PartitionSchedule::new().episode(vec![complement(n, &g2), g2], at, heal_at),
            )
            .delay(delay);

        for kind in ProtocolKind::ALL {
            let a = run_scenario_opts(kind, &legacy, &RunOptions::recording());
            let b = run_scenario_opts(kind, &schedule, &RunOptions::recording());
            assert_results_identical(kind, "single-episode schedule vs Simple", &a, &b)?;
        }
    }

    #[test]
    fn schedule_replay_through_reused_session_matches_one_shot(
        n in 3usize..=5,
        seed in 0u64..1 << 32,
    ) {
        // One pool for the whole property: by the later cases every session
        // has already replayed many different schedules, so this exercises
        // warm-buffer reuse across schedule rewrites, not fresh clusters.
        thread_local! {
            static POOL: std::cell::RefCell<SessionPool> =
                std::cell::RefCell::new(SessionPool::new());
        }
        let scenario = Scenario::new(n)
            .partition_schedule(random_schedule(n, seed))
            .delay(DelayModel::Uniform { seed: seed ^ 0x9e37, min: 1, max: 1000 });
        for kind in ProtocolKind::ALL {
            let reused = POOL.with(|pool| {
                pool.borrow_mut().session(kind, n).run_with(&scenario, &RunOptions::recording())
            });
            let fresh = run_scenario_opts(kind, &scenario, &RunOptions::recording());
            assert_results_identical(kind, "reused session vs one-shot", &reused, &fresh)?;
        }
    }
}
