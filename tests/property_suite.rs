//! Property-based tests (proptest) over the core invariants:
//!
//! * **Theorem 9 as a property**: any simple partition of any small
//!   cluster, at any instant, healing or not, under any seeded delay
//!   schedule, leaves the termination protocol atomic and nonblocking.
//! * **WAL recovery**: arbitrary interleavings of log records and crash
//!   points never resurrect uncommitted writes nor lose committed ones.
//! * **Lock table**: arbitrary acquire/release sequences never leave two
//!   exclusive holders on one key, and waiters are promoted FIFO-compatibly.
//! * **Model determinism**: exploration, concurrency sets and rule
//!   derivation are pure functions of the spec.
//!
//! On failure the harness shrinks the drawn inputs (element removal, then
//! halving toward each range's lower bound) and reports the minimal
//! counterexample it still fails on, so a red run here names the smallest
//! partition instant / schedule seed that breaks the property.

use proptest::prelude::*;
use ptp_core::{run_scenario_opts, PartitionShape, ProtocolKind, RunOptions, Scenario};
use ptp_simnet::{DelayModel, SiteId};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn theorem9_resilience_property(
        n in 3usize..6,
        g2_mask in 1u8..31,
        at in 0u64..9000,
        heal in prop::option::of(500u64..8000),
        seed in 0u64..1000,
        fixed in prop::bool::ANY,
    ) {
        let slaves = n - 1;
        let g2: Vec<SiteId> = (0..slaves)
            .filter(|i| g2_mask >> i & 1 == 1)
            .map(|i| SiteId(i as u16 + 1))
            .collect();
        prop_assume!(!g2.is_empty() && g2.len() < n);

        let delay = if fixed {
            DelayModel::Fixed(1 + seed % 1000)
        } else {
            DelayModel::Uniform { seed, min: 1, max: 1000 }
        };
        let mut scenario = Scenario::new(n).delay(delay);
        scenario.partition = PartitionShape::Simple {
            g2,
            at,
            heal_at: heal.map(|h| at + h),
        };
        let result = run_scenario_opts(ProtocolKind::HuangLi3pc, &scenario, &RunOptions::new());
        prop_assert!(
            result.verdict.is_resilient(),
            "scenario {:?} -> {:?}",
            scenario.partition,
            result.verdict
        );
    }

    #[test]
    fn four_phase_resilience_property(
        at in 0u64..9000,
        seed in 0u64..500,
        g2_single in 1u16..3,
    ) {
        let scenario = Scenario::new(3)
            .partition_g2(vec![SiteId(g2_single)], at)
            .delay(DelayModel::Uniform { seed, min: 1, max: 1000 });
        let result = run_scenario_opts(ProtocolKind::HuangLi4pc, &scenario, &RunOptions::new());
        prop_assert!(result.verdict.is_resilient());
    }

    #[test]
    fn baselines_never_lie_silently_2pc(
        at in 0u64..9000,
        seed in 0u64..300,
    ) {
        // 2PC may block but must stay atomic.
        let scenario = Scenario::new(3)
            .partition_g2(vec![SiteId(2)], at)
            .delay(DelayModel::Uniform { seed, min: 1, max: 1000 });
        let result = run_scenario_opts(ProtocolKind::Plain2pc, &scenario, &RunOptions::new());
        prop_assert!(result.verdict.is_atomic());
    }

    #[test]
    fn quorum_always_atomic(
        at in 0u64..9000,
        seed in 0u64..300,
        g2_mask in 1u8..15,
    ) {
        let g2: Vec<SiteId> = (0..4)
            .filter(|i| g2_mask >> i & 1 == 1)
            .map(|i| SiteId(i as u16 + 1))
            .collect();
        prop_assume!(!g2.is_empty() && g2.len() < 5);
        let scenario = Scenario::new(5)
            .partition_g2(g2, at)
            .delay(DelayModel::Uniform { seed, min: 1, max: 1000 });
        let result = run_scenario_opts(ProtocolKind::QuorumMajority, &scenario, &RunOptions::new());
        prop_assert!(result.verdict.is_atomic());
    }
}

// ---------------------------------------------------------------------------
// WAL recovery properties
// ---------------------------------------------------------------------------

mod wal_props {
    use proptest::prelude::*;
    use ptp_core::ddb::recovery::recover;
    use ptp_core::ddb::storage::Storage;
    use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
    use ptp_core::ddb::wal::{Record, Wal};

    #[derive(Debug, Clone)]
    enum Op {
        Begin(u8, u8), // txn, value
        Commit(u8),
        Abort(u8),
        Flush,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..6, any::<u8>()).prop_map(|(t, v)| Op::Begin(t, v)),
            (0u8..6).prop_map(Op::Commit),
            (0u8..6).prop_map(Op::Abort),
            Just(Op::Flush),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn recovery_never_resurrects_uncommitted_nor_loses_committed(
            ops in prop::collection::vec(op_strategy(), 1..40),
        ) {
            let mut wal = Wal::new();
            let mut storage = Storage::new();
            // Track, per txn, whether a commit record became durable before
            // the crash, and its staged value.
            let mut begun: std::collections::BTreeMap<u8, u8> = Default::default();
            let mut committed_pending_flush: Vec<u8> = vec![];
            let mut begun_pending_flush: Vec<u8> = vec![];
            let mut durable_begin: std::collections::BTreeSet<u8> = Default::default();
            let mut durable_commit: std::collections::BTreeSet<u8> = Default::default();
            // A site never logs a commit after an abort (or vice versa);
            // the generator's raw sequences are filtered to legal ones.
            let mut aborted: std::collections::BTreeSet<u8> = Default::default();

            for op in &ops {
                match *op {
                    Op::Begin(t, v) => {
                        if begun.contains_key(&t) { continue; }
                        begun.insert(t, v);
                        let writes = vec![WriteOp {
                            key: Key::from(format!("k{t}")),
                            value: Value::from_u64(v as u64),
                        }];
                        wal.append(Record::Begin { txn: TxnId(t as u32), writes: writes.clone() });
                        storage.stage(TxnId(t as u32), writes);
                        begun_pending_flush.push(t);
                    }
                    Op::Commit(t) => {
                        if !begun.contains_key(&t)
                            || durable_commit.contains(&t)
                            || committed_pending_flush.contains(&t)
                            || aborted.contains(&t) { continue; }
                        wal.append(Record::Commit { txn: TxnId(t as u32) });
                        committed_pending_flush.push(t);
                    }
                    Op::Abort(t) => {
                        if !begun.contains_key(&t)
                            || durable_commit.contains(&t)
                            || committed_pending_flush.contains(&t)
                            || aborted.contains(&t) { continue; }
                        aborted.insert(t);
                        wal.append(Record::Abort { txn: TxnId(t as u32) });
                        storage.discard(TxnId(t as u32));
                    }
                    Op::Flush => {
                        wal.flush();
                        durable_commit.extend(committed_pending_flush.drain(..));
                        durable_begin.extend(begun_pending_flush.drain(..));
                    }
                }
            }

            // Crash and recover.
            storage.crash();
            wal.crash();
            recover(&mut storage, &mut wal);

            for (t, v) in &begun {
                let key = Key::from(format!("k{t}"));
                let value = storage.get(&key).map(|x| x.as_u64().unwrap());
                if durable_commit.contains(t) && durable_begin.contains(t) {
                    prop_assert_eq!(
                        value, Some(*v as u64),
                        "txn {} committed durably but value lost", t
                    );
                } else {
                    prop_assert_eq!(
                        value, None,
                        "txn {} was never durably committed but its write survived", t
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lock-table properties
// ---------------------------------------------------------------------------

mod lock_props {
    use proptest::prelude::*;
    use ptp_core::ddb::locks::{LockGrant, LockMode, LockTable};
    use ptp_core::ddb::value::{Key, TxnId};

    #[derive(Debug, Clone)]
    enum Op {
        Acquire(u8, u8, bool), // txn, key, exclusive
        Release(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..5, 0u8..4, any::<bool>()).prop_map(|(t, k, x)| Op::Acquire(t, k, x)),
            (0u8..5).prop_map(Op::Release),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn no_conflicting_holders_ever(ops in prop::collection::vec(op_strategy(), 1..60)) {
            let mut table = LockTable::new();
            // Shadow state: which (txn, key, mode) grants are live.
            let mut granted: Vec<(u8, u8, bool)> = vec![];

            for op in &ops {
                match *op {
                    Op::Acquire(t, k, exclusive) => {
                        let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                        let result = table.acquire(
                            TxnId(t as u32),
                            Key::from(format!("k{k}")),
                            mode,
                        );
                        if result == LockGrant::Granted {
                            granted.retain(|(gt, gk, _)| !(*gt == t && *gk == k));
                            granted.push((t, k, table.holds(
                                TxnId(t as u32),
                                &Key::from(format!("k{k}")),
                                LockMode::Exclusive,
                            )));
                        }
                    }
                    Op::Release(t) => {
                        let promoted = table.release_all(TxnId(t as u32));
                        granted.retain(|(gt, _, _)| *gt != t);
                        // Promoted transactions now hold something; record
                        // their holds from the table's view.
                        for p in promoted {
                            for k in 0u8..4 {
                                let key = Key::from(format!("k{k}"));
                                if table.holds(p, &key, LockMode::Shared) {
                                    let ex = table.holds(p, &key, LockMode::Exclusive);
                                    granted.retain(|(gt, gk, _)| !(*gt == p.0 as u8 && *gk == k));
                                    granted.push((p.0 as u8, k, ex));
                                }
                            }
                        }
                    }
                }

                // Invariant: per key, either one exclusive holder or any
                // number of shared holders.
                for k in 0u8..4 {
                    let holders: Vec<&(u8, u8, bool)> =
                        granted.iter().filter(|(_, gk, _)| *gk == k).collect();
                    let exclusives = holders.iter().filter(|(_, _, x)| *x).count();
                    if exclusives > 0 {
                        prop_assert_eq!(
                            holders.len(), 1,
                            "key {} has an exclusive holder plus others: {:?}", k, holders
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Model determinism properties
// ---------------------------------------------------------------------------

mod model_props {
    use proptest::prelude::*;
    use ptp_core::model::concurrency::ConcurrencySets;
    use ptp_core::model::protocols::{three_phase, two_phase};
    use ptp_core::model::rules::derive_rules_augmentation;
    use ptp_core::model::GlobalGraph;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn exploration_is_deterministic(n in 2usize..5) {
            let a = GlobalGraph::explore(&three_phase(n));
            let b = GlobalGraph::explore(&three_phase(n));
            prop_assert_eq!(a.states, b.states);
        }

        #[test]
        fn concurrency_sets_are_symmetric(n in 2usize..5) {
            // If t ∈ C(s) then s ∈ C(t): both come from the same global
            // state, so the relation must be symmetric.
            let spec = two_phase(n);
            let graph = GlobalGraph::explore(&spec);
            let csets = ConcurrencySets::compute(&spec, &graph);
            for s in spec.all_states() {
                for t in csets.of(s).iter() {
                    prop_assert!(
                        csets.of(*t).contains(&s),
                        "asymmetry: {:?} in C({:?}) but not vice versa", t, s
                    );
                }
            }
        }

        #[test]
        fn rule_derivation_is_deterministic(n in 2usize..5) {
            let a = derive_rules_augmentation(&three_phase(n)).augmentation;
            let b = derive_rules_augmentation(&three_phase(n)).augmentation;
            prop_assert_eq!(a, b);
        }
    }
}
