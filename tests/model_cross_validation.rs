//! Cross-validation between the formal model and the simulator: the two
//! implementations of "the protocol" must agree.
//!
//! * The FSA-interpreted 3PC and the hand-written termination engine reach
//!   the same decisions in failure-free runs.
//! * Every local state a simulated site passes through exists in the FSA
//!   and is reachable.
//! * Local states observed *simultaneously* in a failure-free simulation
//!   are in each other's computed concurrency sets — the simulator
//!   witnesses the model's `C(s)`, never contradicts it.

use ptp_core::model::concurrency::ConcurrencySets;
use ptp_core::model::protocols::three_phase;
use ptp_core::model::{GlobalGraph, StateRef};
use ptp_core::{run_scenario, ProtocolKind, Scenario};
use ptp_protocols::api::Vote;
use ptp_protocols::clusters::plain_3pc_cluster;
use ptp_protocols::runner::run_protocol;
use ptp_protocols::Verdict;
use ptp_simnet::{DelayModel, NetConfig, PartitionEngine, TraceEvent};

#[test]
fn interpreted_and_engine_3pc_agree_failure_free() {
    for seed in 0..10u64 {
        let delay = DelayModel::Uniform { seed, min: 1, max: 1000 };
        let interpreted = run_protocol(
            plain_3pc_cluster(4, &[Vote::Yes; 3]),
            NetConfig::default(),
            PartitionEngine::always_connected(),
            &delay,
            vec![],
        );
        let engine = run_scenario(ProtocolKind::HuangLi3pc, &Scenario::new(4).delay(delay));
        assert_eq!(Verdict::judge(&interpreted.outcomes), engine.verdict, "seed {seed}");
    }
}

#[test]
fn interpreted_and_engine_agree_on_no_votes() {
    for votes in [
        [Vote::No, Vote::Yes, Vote::Yes],
        [Vote::Yes, Vote::No, Vote::Yes],
        [Vote::Yes, Vote::Yes, Vote::No],
    ] {
        let interpreted = run_protocol(
            plain_3pc_cluster(4, &votes),
            NetConfig::default(),
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(700),
            vec![],
        );
        let engine = run_scenario(
            ProtocolKind::HuangLi3pc,
            &Scenario::new(4).votes(votes.to_vec()).delay(DelayModel::Fixed(700)),
        );
        assert_eq!(Verdict::judge(&interpreted.outcomes), Verdict::AllAbort);
        assert_eq!(engine.verdict, Verdict::AllAbort);
    }
}

/// Reconstructs per-site state timelines from `enter-state` notes and
/// checks every simultaneously-occupied pair against the model's
/// concurrency sets.
#[test]
fn simulated_concurrency_is_within_model_concurrency_sets() {
    let spec = three_phase(3);
    let graph = GlobalGraph::explore(&spec);
    let csets = ConcurrencySets::compute(&spec, &graph);

    for seed in 0..20u64 {
        let run = run_protocol(
            plain_3pc_cluster(3, &[Vote::Yes; 2]),
            NetConfig::default(),
            PartitionEngine::always_connected(),
            &DelayModel::Uniform { seed, min: 1, max: 1000 },
            vec![],
        );
        // Current state per site, updated event by event.
        let mut current: Vec<usize> = vec![0; 3];
        for ev in run.trace.events() {
            if let TraceEvent::Note { site, label: "enter-state", detail, .. } = ev {
                current[site.index()] = *detail as usize;
                // After every transition, all pairs must be mutually
                // concurrent in the model.
                for i in 0..3usize {
                    for j in 0..3usize {
                        if i == j {
                            continue;
                        }
                        let si = StateRef { site: i, state: current[i] };
                        let sj = StateRef { site: j, state: current[j] };
                        assert!(
                            csets.of(si).contains(&sj),
                            "seed {seed}: observed {}:{} concurrent with {}:{} — not in C(s)",
                            i,
                            spec.state_name(si),
                            j,
                            spec.state_name(sj),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn every_simulated_state_is_reachable_in_the_model() {
    let spec = three_phase(3);
    let graph = GlobalGraph::explore(&spec);
    // Reachable (site, state) pairs from the global graph.
    let mut reachable = std::collections::BTreeSet::new();
    for g in &graph.states {
        for (site, &l) in g.locals.iter().enumerate() {
            reachable.insert((site, l as usize));
        }
    }
    for seed in 0..10u64 {
        let run = run_protocol(
            plain_3pc_cluster(3, &[Vote::Yes; 2]),
            NetConfig::default(),
            PartitionEngine::always_connected(),
            &DelayModel::Uniform { seed, min: 1, max: 1000 },
            vec![],
        );
        for ev in run.trace.events() {
            if let TraceEvent::Note { site, label: "enter-state", detail, .. } = ev {
                assert!(
                    reachable.contains(&(site.index(), *detail as usize)),
                    "seed {seed}: site {site} entered unreachable state {detail}"
                );
            }
        }
    }
}

#[test]
fn decisions_match_terminal_global_states() {
    // Failure-free terminal global states of the model are all-commit or
    // all-abort; simulated runs must land in one of them.
    let result = run_scenario(ProtocolKind::Plain3pc, &Scenario::new(3));
    assert_eq!(result.verdict, Verdict::AllCommit);
    let aborted =
        run_scenario(ProtocolKind::Plain3pc, &Scenario::new(3).votes(vec![Vote::No, Vote::Yes]));
    assert_eq!(aborted.verdict, Verdict::AllAbort);
}

#[test]
fn fsa_interpreter_handles_partition_like_sim_engine_under_sec3_conditions() {
    // Both the interpreted naive-augmented 3PC and the model's Sec. 3
    // analysis say the same thing: inconsistency exists at n = 3. (The
    // model predicts it via Rule (a) assignments; the simulator exhibits
    // it.)
    use ptp_core::{sweep, SweepGrid};
    let mut grid = SweepGrid::standard(3);
    grid.partition_times = (0..=16).map(|i| i * 250).collect();
    grid.delays = vec![DelayModel::Fixed(1000)];
    let report = sweep(ProtocolKind::Naive3pc, &grid);
    assert!(!report.fully_atomic());
}
