//! The paper's timing bounds (Figs. 5, 6, 7, 9) as enforced invariants:
//! adversarial schedules reconstruct each worst case; randomized sweeps
//! must never exceed the stated bound.

use ptp_core::cases::max_wait_after_p_timeout;
use ptp_core::{run_scenario, ProtocolKind, RunOptions, Scenario, Session};
use ptp_simnet::{DelayModel, ScheduleBuilder, SiteId, Trace, TraceEvent};

fn probe_gap(trace: &Trace) -> Option<u64> {
    let first_ud = trace.events().iter().find_map(|e| match e {
        TraceEvent::Returned { at, src, kind: "prepare", .. } if *src == SiteId(0) => {
            Some(at.ticks())
        }
        _ => None,
    })?;
    trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Delivered { at, dst, kind: "probe", .. } if *dst == SiteId(0) => {
                Some(at.ticks())
            }
            _ => None,
        })
        .max()
        .map(|last| last.saturating_sub(first_ud))
}

fn max_w_wait(trace: &Trace, n: usize) -> Option<u64> {
    let mut max = None;
    for site in 1..n as u16 {
        let site = SiteId(site);
        let Some((timeout_at, _)) = trace.first_note(site, "slave-timeout-w") else { continue };
        let commit_at = trace.events().iter().find_map(|e| match e {
            TraceEvent::Delivered { at, dst, kind: "commit", .. }
                if *dst == site && *at >= timeout_at =>
            {
                Some(at.ticks())
            }
            _ => None,
        });
        if let Some(c) = commit_at {
            let gap = c - timeout_at.ticks();
            max = Some(max.map_or(gap, |m: u64| m.max(gap)));
        }
    }
    max
}

#[test]
fn fig5_no_spurious_timeouts_failure_free() {
    for delay in [
        DelayModel::Fixed(1000), // every message at the bound
        DelayModel::Fixed(1),
        DelayModel::Uniform { seed: 3, min: 1, max: 1000 },
    ] {
        let result = run_scenario(ProtocolKind::HuangLi3pc, &Scenario::new(5).delay(delay));
        let timeouts = result
            .trace
            .events()
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Note { label, .. }
                    if label.starts_with("master-timeout") || label.starts_with("slave-timeout"))
            })
            .count();
        assert_eq!(timeouts, 0);
    }
}

#[test]
fn fig6_adversarial_probe_gap_is_tight_but_bounded() {
    // prepare->2 bounces almost instantly; the G1 slave's probe is as late
    // as the delay bound allows: gap approaches 5T from below.
    let schedule = ScheduleBuilder::with_default(1000).outbound(5, 1).return_leg(5, 1).build();
    let scenario = Scenario::new(3).partition_g2(vec![SiteId(2)], 2001).delay(schedule);
    let result = run_scenario(ProtocolKind::HuangLi3pc, &scenario);
    let gap = probe_gap(&result.trace).expect("UD + probe must occur");
    assert!(gap <= 5000, "gap {gap} exceeds 5T");
    assert!(gap >= 4900, "adversarial schedule should approach 5T, got {gap}");
    assert!(result.verdict.is_resilient());
}

#[test]
fn fig6_randomized_probe_gaps_within_5t() {
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
    let recording = RunOptions::recording();
    for seed in 0..25u64 {
        for at in (1500..=3500).step_by(500) {
            let scenario = Scenario::new(3)
                .partition_g2(vec![SiteId(2)], at)
                .delay(DelayModel::Uniform { seed, min: 1, max: 1000 });
            let result = session.run_with(&scenario, &recording);
            assert!(result.verdict.is_resilient());
            if let Some(gap) = probe_gap(&result.trace) {
                assert!(gap <= 5000, "seed {seed} at {at}: gap {gap}");
            }
        }
    }
}

#[test]
fn fig7_adversarial_w_wait_is_tight_but_bounded() {
    // The Fig. 7 worst case: the peer's commit reaches the w-waiting slave
    // just inside 6T (see exp_fig7_wait_w_bound for the construction).
    let schedule =
        ScheduleBuilder::with_default(1000).outbound(1, 1).outbound(4, 998).outbound(6, 1).build();
    let scenario = Scenario::new(3).partition_g2(vec![SiteId(1), SiteId(2)], 3000).delay(schedule);
    let result = run_scenario(ProtocolKind::HuangLi3pc, &scenario);
    let gap = max_w_wait(&result.trace, 3).expect("w wait must occur");
    assert!(gap <= 6000, "gap {gap} exceeds 6T");
    assert!(gap >= 5900, "adversarial schedule should approach 6T, got {gap}");
    assert!(result.verdict.is_resilient());
}

#[test]
fn fig7_randomized_w_waits_within_6t() {
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
    let recording = RunOptions::recording();
    for seed in 0..25u64 {
        for at in (500..=4000).step_by(500) {
            for g2 in [vec![SiteId(2)], vec![SiteId(1), SiteId(2)]] {
                let scenario = Scenario::new(3).partition_g2(g2, at).delay(DelayModel::Uniform {
                    seed,
                    min: 1,
                    max: 1000,
                });
                let result = session.run_with(&scenario, &recording);
                if let Some(gap) = max_w_wait(&result.trace, 3) {
                    assert!(gap <= 6000, "seed {seed} at {at}: gap {gap}");
                }
            }
        }
    }
}

#[test]
fn fig9_p_timeout_waits_within_5t_even_transient() {
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
    let recording = RunOptions::recording();
    for seed in 0..15u64 {
        for at in (2000..=4500).step_by(500) {
            for heal in [1000u64, 3000, 6000] {
                let scenario = Scenario::new(3)
                    .transient_partition(vec![SiteId(2)], at, at + heal)
                    .delay(DelayModel::Uniform { seed, min: 1, max: 1000 });
                let result = session.run_with(&scenario, &recording);
                assert!(result.verdict.is_resilient());
                if let Some(wait) = max_wait_after_p_timeout(&result.trace, 3) {
                    assert!(wait <= 5000, "seed {seed} at {at} heal {heal}: wait {wait}");
                }
            }
        }
    }
}

#[test]
fn decision_latency_bounded_under_any_partition() {
    // End-to-end liveness bound: every site decides within a fixed horizon
    // of the partition (no unbounded waiting anywhere in the protocol).
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 4);
    for at in (0..=6000).step_by(500) {
        let scenario = Scenario::new(4).partition_g2(vec![SiteId(2), SiteId(3)], at);
        let result = session.run(&scenario);
        for (i, o) in result.outcomes.iter().enumerate() {
            let decided = o.decided_at.unwrap_or_else(|| panic!("site {i} undecided"));
            // Commit protocol takes <= 5T failure-free; termination adds at
            // most ~10T of timer chains after the partition.
            assert!(
                decided.ticks() <= at + 15_000,
                "site {i} decided at {decided}, partition at {at}"
            );
        }
    }
}
