//! Compiler-equivalence suite for the scenario-timeline DSL.
//!
//! One [`Timeline`] value must mean the same faults on every backend:
//!
//! * lowered to the simulator, a single-episode timeline reproduces the
//!   legacy `PartitionShape::Simple` configuration **cell-for-cell**
//!   (verdict, per-site outcomes, event counters) for all eight protocol
//!   kinds;
//! * lowered to `ptp-livenet`, the same timeline passes the live invariant
//!   audits (consistency, termination) for all four thread-backed kinds;
//! * lowered into `ptp-live`'s serving stack via `LiveOptions::with_faults`,
//!   the same timeline still audits clean.

use ptp_core::livenet::run_live_with;
use ptp_core::protocols::api::Vote;
use ptp_core::protocols::clusters::{huang_li_3pc_cluster_any, huang_li_4pc_cluster_any};
use ptp_core::protocols::quorum::{quorum_cluster_any, QuorumConfig};
use ptp_core::protocols::termination::TerminationVariant;
use ptp_core::protocols::AnyParticipant;
use ptp_core::scenario::ScenarioBuilder;
use ptp_core::{run_scenario, run_scenario_opts, ProtocolKind, RunOptions, Scenario, Timeline};
use ptp_simnet::SiteId;
use std::time::Duration;

/// The canonical transient partition: slaves 2 and 3 secede at 1500 (xacts
/// in flight), connectivity returns at 6000.
fn transient_timeline(n: usize) -> Timeline {
    let g2 = vec![SiteId(2), SiteId(3)];
    let g1 = (0..n as u16).map(SiteId).filter(|s| !g2.contains(s)).collect();
    ScenarioBuilder::new(n).at(1500).partition(vec![g1, g2]).at(6000).heal().build()
}

#[test]
fn single_episode_timeline_matches_legacy_simple_cell_for_cell() {
    let n = 4;
    let timeline = transient_timeline(n);
    let legacy = Scenario::new(n).transient_partition(vec![SiteId(2), SiteId(3)], 1500, 6000);
    let opts = RunOptions::recording();
    for kind in ProtocolKind::ALL {
        let dsl = run_scenario_opts(kind, &timeline.scenario(), &opts);
        let reference = run_scenario_opts(kind, &legacy, &opts);
        assert_eq!(dsl.verdict, reference.verdict, "{}", kind.name());
        assert_eq!(dsl.outcomes, reference.outcomes, "{}", kind.name());
        assert_eq!(dsl.report.counters, reference.report.counters, "{}", kind.name());
        assert_eq!(dsl.report.events, reference.report.events, "{}", kind.name());
        assert_eq!(dsl.trace.events(), reference.trace.events(), "{}", kind.name());
    }
}

#[test]
fn permanent_partition_timeline_matches_legacy_simple_cell_for_cell() {
    let n = 4;
    let g2 = vec![SiteId(3)];
    let timeline = ScenarioBuilder::new(n)
        .at(2500)
        .partition(vec![vec![SiteId(0), SiteId(1), SiteId(2)], g2.clone()])
        .build();
    let legacy = Scenario::new(n).partition_g2(g2, 2500);
    let opts = RunOptions::recording();
    for kind in ProtocolKind::ALL {
        let dsl = run_scenario_opts(kind, &timeline.scenario(), &opts);
        let reference = run_scenario_opts(kind, &legacy, &opts);
        assert_eq!(dsl.verdict, reference.verdict, "{}", kind.name());
        assert_eq!(dsl.outcomes, reference.outcomes, "{}", kind.name());
        assert_eq!(dsl.trace.events(), reference.trace.events(), "{}", kind.name());
    }
}

/// A named, repeatable live-cluster recipe (as in `livenet_invariants`).
type ClusterRecipe = (&'static str, Box<dyn Fn() -> Vec<AnyParticipant>>);

/// The four thread-backed protocol kinds, as live clusters.
fn live_clusters(n: usize) -> Vec<ClusterRecipe> {
    let votes = vec![Vote::Yes; n - 1];
    let v1 = votes.clone();
    let v2 = votes.clone();
    let v3 = votes.clone();
    let v4 = votes;
    vec![
        (
            "hl-3pc-transient",
            Box::new(move || huang_li_3pc_cluster_any(n, &v1, TerminationVariant::Transient))
                as Box<dyn Fn() -> Vec<AnyParticipant>>,
        ),
        (
            "hl-3pc-static",
            Box::new(move || huang_li_3pc_cluster_any(n, &v2, TerminationVariant::Static)),
        ),
        (
            "hl-4pc",
            Box::new(move || huang_li_4pc_cluster_any(n, &v3, TerminationVariant::Transient)),
        ),
        ("quorum-majority", Box::new(move || quorum_cluster_any(QuorumConfig::majority(n), &v4))),
    ]
}

#[test]
fn the_same_timeline_survives_the_livenet_lowering() {
    // The timeline's ticks map onto the wall clock through T = 8ms; the
    // transient split must leave every protocol consistent and decided
    // (the same invariants `livenet_invariants` pins for hand-built
    // LivePartitions).
    let n = 4;
    let t = Duration::from_millis(8);
    let timeline = transient_timeline(n);
    let faults = timeline.live_faults(t);
    for (name, cluster) in live_clusters(n) {
        for rep in 0..2 {
            let config = ptp_core::livenet::LiveConfig::with_t(t);
            let outcome = run_live_with(cluster(), config, faults.clone());
            assert!(outcome.consistent(), "{name} rep {rep}: {outcome:?}");
            assert!(outcome.all_decided(), "{name} rep {rep}: {outcome:?}");
        }
    }
}

#[test]
fn the_same_timeline_survives_the_live_serving_lowering() {
    // Third backend: the threaded shard server. The timeline's faults are
    // installed through LiveOptions::with_faults; the storage audit (minus
    // the convergence checks a partition legitimately relaxes) must hold.
    let mut opts = ptp_live::LiveOptions::small(120.0, Duration::from_millis(300));
    opts.flush_cost = Duration::ZERO;
    let timeline = ScenarioBuilder::new(opts.sites)
        .t_unit(1000)
        .at(4000)
        .partition(vec![
            vec![SiteId(0), SiteId(1), SiteId(2), SiteId(3)],
            vec![SiteId(4), SiteId(5)],
        ])
        .at(9000)
        .heal()
        .build();
    let faults = timeline.live_faults(opts.t);
    let opts = opts.with_faults(faults);
    assert!(opts.partition.is_some(), "the lowering must arm the partition");
    let report = ptp_live::run_server(&opts);
    assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
    assert!(!report.audit.strict, "partitioned runs drop convergence checks");
}

#[test]
fn degrade_and_duplicate_timeline_is_clean_on_sim_and_livenet() {
    // A richer timeline — a degraded-delay window plus duplicated xacts —
    // exercises the non-partition fault classes through both lowerings.
    let n = 3;
    let g2 = vec![SiteId(2)];
    let timeline = ScenarioBuilder::new(n)
        .at(500)
        .degrade(800..=1000)
        .at(1000)
        .partition(vec![vec![SiteId(0), SiteId(1)], g2])
        .at(5000)
        .heal()
        .duplicate(ptp_simnet::EnvelopeMatch::kind("xact"), 400)
        .build();

    let sim = run_scenario(ProtocolKind::HuangLi3pc, &timeline.scenario());
    assert!(sim.verdict.is_resilient(), "{:?}", sim.verdict);

    let t = Duration::from_millis(8);
    let faults = timeline.live_faults(t);
    assert_eq!(faults.degrades.len(), 1);
    assert_eq!(faults.env_faults.len(), 1);
    let cluster = huang_li_3pc_cluster_any(n, &[Vote::Yes; 2], TerminationVariant::Transient);
    let outcome = run_live_with(cluster, ptp_core::livenet::LiveConfig::with_t(t), faults);
    assert!(outcome.consistent(), "{outcome:?}");
    assert!(outcome.all_decided(), "{outcome:?}");
}
