//! The Sec. 6 case tree, exercised end to end: a sweep of transient
//! partitions must populate the tree's cases, stay resilient in all of
//! them, and respect the per-case wait bounds — including the unbounded
//! case 3.2.2.2 that the 5T rule converts into a commit.

use ptp_core::cases::{classify, max_wait_after_p_timeout, TransientCase};
use ptp_core::{ProtocolKind, RunOptions, Scenario, Session};
use ptp_simnet::{DelayModel, SiteId};
use std::collections::BTreeMap;

fn sweep_cases() -> BTreeMap<TransientCase, (usize, u64)> {
    let mut per_case: BTreeMap<TransientCase, (usize, u64)> = BTreeMap::new();
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
    let recording = RunOptions::recording();
    for g2 in [vec![SiteId(2)], vec![SiteId(1), SiteId(2)]] {
        for at in (1500..=4750).step_by(250) {
            for heal_after in [500u64, 1500, 3000, 6000] {
                for seed in 0..8u64 {
                    let delay = if seed == 0 {
                        DelayModel::Fixed(1000)
                    } else {
                        DelayModel::Uniform { seed, min: 1, max: 1000 }
                    };
                    let scenario = Scenario::new(3)
                        .transient_partition(g2.clone(), at, at + heal_after)
                        .delay(delay);
                    let result = session.run_with(&scenario, &recording);
                    assert!(
                        result.verdict.is_resilient(),
                        "g2={g2:?} at={at} heal=+{heal_after} seed={seed}: {:?}",
                        result.verdict
                    );
                    let case = classify(&result.trace, &g2);
                    let wait = max_wait_after_p_timeout(&result.trace, 3).unwrap_or(0);
                    let e = per_case.entry(case).or_insert((0, 0));
                    e.0 += 1;
                    e.1 = e.1.max(wait);
                }
            }
        }
    }
    per_case
}

#[test]
fn case_tree_is_populated_and_bounded() {
    let per_case = sweep_cases();

    // The main branches must all appear in a sweep this dense.
    for case in [
        TransientCase::Case1,
        TransientCase::Case3_1,
        TransientCase::Case3_2_1,
        TransientCase::Case3_2_2_1,
        TransientCase::Case3_2_2_2,
    ] {
        assert!(per_case.contains_key(&case), "case {case:?} missing from sweep: {per_case:?}");
    }

    // Every measured wait stays within the Sec. 6 analysis (5T overall).
    for (case, (_, max_wait)) in &per_case {
        assert!(*max_wait <= 5000, "case {case:?} waited {max_wait} > 5T");
    }

    // Case 3.2.2.2 is where the 5T rule fires: the wait reaches exactly 5T.
    let (_, wait_3222) = per_case[&TransientCase::Case3_2_2_2];
    assert_eq!(wait_3222, 5000, "the 5T rule defines this case's wait");
}

#[test]
fn static_variant_survives_permanent_but_only_transient_survives_heals() {
    // Under a permanent partition both variants are resilient. Under a
    // transient partition the static variant can leave the probing slave
    // waiting forever only in case 3.2.2.2 — which needs all commits
    // *sent*; with our grid it is rare but the transient variant must be
    // resilient everywhere regardless.
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
    for at in (1500..=4500).step_by(250) {
        for heal_after in [500u64, 2000, 5000] {
            let scenario = Scenario::new(3)
                .transient_partition(vec![SiteId(2)], at, at + heal_after)
                .delay(DelayModel::Fixed(1000));
            let result = session.run(&scenario);
            assert!(result.verdict.is_resilient(), "transient at={at} heal=+{heal_after}");
        }
    }
}

#[test]
fn transient_heal_mid_collection_still_consistent() {
    // Heal while the master's 5T window is open: probes that suddenly can
    // cross must not confuse the PB/UD rule (the subtle scenario analysed
    // in the termination-protocol module docs).
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 4);
    for heal_after in (500..=8000).step_by(250) {
        let scenario = Scenario::new(4)
            .transient_partition(vec![SiteId(2), SiteId(3)], 2500, 2500 + heal_after)
            .delay(DelayModel::Fixed(1000));
        let result = session.run(&scenario);
        assert!(result.verdict.is_resilient(), "heal=+{heal_after}: {:?}", result.verdict);
    }
}

#[test]
fn outside_tree_cases_are_still_resilient() {
    // Partitions during phase 1 (before any prepare) sit outside the Sec. 6
    // tree but must of course still terminate consistently (abort).
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
    let recording = RunOptions::recording();
    for at in (0..=1400).step_by(200) {
        let scenario = Scenario::new(3)
            .transient_partition(vec![SiteId(2)], at, at + 2000)
            .delay(DelayModel::Fixed(1000));
        let result = session.run_with(&scenario, &recording);
        assert!(result.verdict.is_resilient());
        assert_eq!(classify(&result.trace, &[SiteId(2)]), TransientCase::OutsideTree);
    }
}
