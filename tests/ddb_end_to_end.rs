//! End-to-end distributed-database tests: multi-transaction workloads,
//! partitions mid-commit, WAL-based crash recovery, and the E14
//! availability story.

use ptp_core::ddb::cluster::{CommitProtocol, DbCluster};
use ptp_core::ddb::recovery::recover;
use ptp_core::ddb::site::TxnSpec;
use ptp_core::ddb::storage::Storage;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_core::ddb::wal::{Record, Wal};
use ptp_model::Decision;
use ptp_simnet::{PartitionEngine, PartitionSpec, SimTime, SiteId};
use std::collections::BTreeMap;

fn write(key: &str, v: u64) -> WriteOp {
    WriteOp { key: Key::from(key), value: Value::from_u64(v) }
}

fn two_site_txn(id: u32, a: u64, b: u64) -> TxnSpec {
    let mut writes = BTreeMap::new();
    writes.insert(1u16, vec![write("a", a)]);
    writes.insert(2u16, vec![write("b", b)]);
    TxnSpec { id: TxnId(id), writes }
}

#[test]
fn sequential_workload_commits_in_order() {
    let mut cluster = DbCluster::new(3, CommitProtocol::HuangLi)
        .seed(1, Key::from("a"), Value::from_u64(0))
        .seed(2, Key::from("b"), Value::from_u64(0));
    // Ten transfers, far enough apart to never conflict.
    for i in 0..10u32 {
        cluster =
            cluster.submit(i as u64 * 8000, two_site_txn(i + 1, (i + 1) as u64, (i + 1) as u64));
    }
    let run = cluster.run();
    assert!(run.metrics.atomicity_violations().is_empty());
    assert_eq!(run.metrics.decisions.len(), 10);
    for per_site in run.metrics.decisions.values() {
        assert!(per_site.values().all(|(d, _)| *d == Decision::Commit));
    }
    assert_eq!(run.storages[1].get(&Key::from("a")).unwrap().as_u64(), Some(10));
    assert_eq!(run.storages[2].get(&Key::from("b")).unwrap().as_u64(), Some(10));
}

#[test]
fn partition_mid_workload_never_mixes_decisions() {
    for at in (500..=9000).step_by(500) {
        let partition = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(at),
            vec![SiteId(0), SiteId(1)],
            vec![SiteId(2)],
        )]);
        let run = DbCluster::new(3, CommitProtocol::HuangLi)
            .submit(0, two_site_txn(1, 1, 1))
            .submit(6000, two_site_txn(2, 2, 2))
            .partition(partition)
            .run();
        assert!(
            run.metrics.atomicity_violations().is_empty(),
            "partition at {at}: {:?}",
            run.metrics.decisions
        );
        assert!(
            run.blocked.iter().all(Vec::is_empty),
            "partition at {at}: blocked {:?}",
            run.blocked
        );
    }
}

#[test]
fn atomic_visibility_both_writes_or_neither() {
    // Whatever the partition does, the two writes of one transaction are
    // either both visible or both absent.
    for at in (500..=6000).step_by(250) {
        let partition = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(at),
            vec![SiteId(0), SiteId(1)],
            vec![SiteId(2)],
        )]);
        let run = DbCluster::new(3, CommitProtocol::HuangLi)
            .submit(0, two_site_txn(1, 7, 7))
            .partition(partition)
            .run();
        let a = run.storages[1].get(&Key::from("a")).map(|v| v.as_u64());
        let b = run.storages[2].get(&Key::from("b")).map(|v| v.as_u64());
        assert_eq!(a.is_some(), b.is_some(), "partition at {at}: a={a:?} b={b:?}");
    }
}

#[test]
fn two_pc_blocked_locks_vs_huang_li_released() {
    let partition = || {
        PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(1500),
            vec![SiteId(0), SiteId(1)],
            vec![SiteId(2)],
        )])
    };
    let blocked_2pc = DbCluster::new(3, CommitProtocol::TwoPhase)
        .submit(0, two_site_txn(1, 1, 1))
        .partition(partition())
        .run();
    let held: Vec<_> = blocked_2pc
        .metrics
        .hold_durations(SimTime(200_000))
        .into_iter()
        .filter(|(_, _, _, still)| *still)
        .collect();
    assert!(!held.is_empty(), "2PC must strand locks");

    let hl = DbCluster::new(3, CommitProtocol::HuangLi)
        .submit(0, two_site_txn(1, 1, 1))
        .partition(partition())
        .run();
    assert!(hl.metrics.hold_durations(SimTime(200_000)).iter().all(|(_, _, _, still)| !still));
    // And the termination is timely: every lock released within ~12T.
    for (txn, site, ticks, _) in hl.metrics.hold_durations(SimTime(200_000)) {
        assert!(ticks <= 12_000, "{txn} at {site} held {ticks} ticks");
    }
}

#[test]
fn wal_recovery_survives_crash_between_commit_and_apply() {
    // The single-site Sec. 2 discipline, end to end: stage + durable commit
    // record, crash before apply, recover, writes present.
    let mut storage = Storage::new();
    let mut wal = Wal::new();
    storage.seed(Key::from("x"), Value::from_u64(1));

    let writes = vec![write("x", 42), write("y", 7)];
    wal.append(Record::Begin { txn: TxnId(9), writes: writes.clone() });
    storage.stage(TxnId(9), writes);
    wal.append_durable(Record::Commit { txn: TxnId(9) });

    storage.crash();
    wal.crash();
    let summary = recover(&mut storage, &mut wal);
    assert_eq!(summary.redone, vec![TxnId(9)]);
    assert_eq!(storage.get(&Key::from("x")).unwrap().as_u64(), Some(42));
    assert_eq!(storage.get(&Key::from("y")).unwrap().as_u64(), Some(7));

    // Recovering again changes nothing (idempotence).
    let again = recover(&mut storage, &mut wal);
    assert!(again.redone.is_empty() && again.discarded.is_empty());
}

#[test]
fn quorum_cluster_strands_minority_but_stays_atomic() {
    let partition = PartitionEngine::new(vec![PartitionSpec::simple(
        SimTime(1500),
        vec![SiteId(0), SiteId(1)],
        vec![SiteId(2)],
    )]);
    let run = DbCluster::new(3, CommitProtocol::QuorumMajority)
        .submit(0, two_site_txn(1, 3, 3))
        .partition(partition)
        .run();
    assert!(run.metrics.atomicity_violations().is_empty());
    assert!(!run.blocked[2].is_empty(), "minority site must block");
}

#[test]
fn contended_keys_serialize_or_abort_never_corrupt() {
    // Five transactions all writing the same keys, 300 ticks apart, on a
    // fast network: whatever mix of commits/aborts results, the final value
    // must equal the payload of the *last committed* transaction.
    let mut cluster =
        DbCluster::new(3, CommitProtocol::HuangLi).delay(ptp_simnet::DelayModel::Fixed(150));
    for i in 0..5u32 {
        cluster = cluster
            .submit(i as u64 * 300, two_site_txn(i + 1, (i + 1) as u64 * 10, (i + 1) as u64 * 10));
    }
    let run = cluster.run();
    assert!(run.metrics.atomicity_violations().is_empty());
    let committed: Vec<u32> = run
        .metrics
        .decisions
        .iter()
        .filter(|(_, per_site)| per_site.values().any(|(d, _)| *d == Decision::Commit))
        .map(|(t, _)| t.0)
        .collect();
    assert!(!committed.is_empty());
    let last = *committed.iter().max().unwrap() as u64;
    assert_eq!(
        run.storages[1].get(&Key::from("a")).unwrap().as_u64(),
        Some(last * 10),
        "committed set: {committed:?}"
    );
}
