//! The sharded path must not fork behaviour (this PR's tentpole guarantee):
//!
//! > A [`ShardCluster`] with **1 shard × replication = n** — i.e. the flat,
//! > fully-replicated cluster the paper models — running the same workload
//! > is field-identical ([`Metrics`], storages, WALs, blocked sets) to the
//! > existing [`DbCluster`], for every [`CommitProtocol`].
//!
//! Workloads randomize transaction count, write sets (drawn from a small
//! key pool so lock conflicts and timeout aborts happen), submission
//! times, delay model, partitions and site crashes, all from a seeded
//! [`SmallRng`] so failures replay bit-for-bit.

use ptp_core::ddb::cluster::{CommitProtocol, DbCluster};
use ptp_core::ddb::site::TxnSpec;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_shard::{ShardCluster, ShardTopology, ShardTxnSpec};
use ptp_simnet::rng::SmallRng;
use ptp_simnet::{DelayModel, FailureSpec, PartitionEngine, PartitionSpec, SimTime, SiteId};
use std::collections::BTreeMap;

const RUNS_PER_PROTOCOL: usize = 50;

/// One deterministic workload, buildable as either cluster flavour.
struct WorkloadSpec {
    n: usize,
    /// Per transaction: `(submit tick, id, writes)`.
    txns: Vec<(u64, TxnId, Vec<WriteOp>)>,
    seeds: Vec<(Key, Value)>,
    delay: DelayModel,
    partition: Option<PartitionSpec>,
    failure: Option<FailureSpec>,
}

impl WorkloadSpec {
    fn random(rng: &mut SmallRng) -> WorkloadSpec {
        let n = 3 + rng.gen_range(0..=1) as usize;
        let txn_count = 1 + rng.gen_range(0..=7) as u32;
        let txns = (0..txn_count)
            .map(|i| {
                let at = rng.gen_range(0..=20_000);
                let writes = (0..=rng.gen_range(0..=2))
                    .map(|_| WriteOp {
                        key: Key::from(format!("k{}", rng.gen_range(0..=2))),
                        value: Value::from_u64(rng.gen_range(0..=999)),
                    })
                    .collect();
                (at, TxnId(i + 1), writes)
            })
            .collect();

        let seeds =
            (0..3).map(|i| (Key::from(format!("k{i}")), Value::from_u64(i as u64))).collect();

        let delay = match rng.gen_range(0..=2) {
            0 => DelayModel::Fixed(1 + rng.gen_range(0..=999)),
            1 => DelayModel::Uniform { seed: rng.gen_range(0..=9_999), min: 1, max: 1000 },
            _ => DelayModel::Fixed(700),
        };

        let partition = (rng.gen_range(0..=2) == 0).then(|| {
            let cut = SiteId(1 + rng.gen_range(0..=(n as u64 - 2)) as u16);
            let g1 = (0..n as u16).map(SiteId).filter(|s| *s != cut).collect();
            let at = SimTime(rng.gen_range(0..=12_000));
            match rng.gen_range(0..=1) {
                0 => PartitionSpec::simple(at, g1, vec![cut]),
                _ => PartitionSpec::transient(
                    at,
                    g1,
                    vec![cut],
                    at + ptp_simnet::SimDuration(500 + rng.gen_range(0..=8_000)),
                ),
            }
        });

        let failure = (rng.gen_range(0..=3) == 0).then(|| {
            let site = SiteId(1 + rng.gen_range(0..=(n as u64 - 2)) as u16);
            let at = SimTime(500 + rng.gen_range(0..=8_000));
            if rng.gen_range(0..=1) == 0 {
                FailureSpec::crash(site, at)
            } else {
                FailureSpec::crash_recover(site, at, at + ptp_simnet::SimDuration(10_000))
            }
        });

        WorkloadSpec { n, txns, seeds, delay, partition, failure }
    }

    /// The flat baseline: with full replication every site stages every
    /// write, so the equivalent [`DbCluster`] workload hands each site the
    /// complete write set.
    fn build_flat(&self, protocol: CommitProtocol) -> DbCluster {
        let mut cluster = DbCluster::new(self.n, protocol).delay(self.delay.clone());
        for (key, value) in &self.seeds {
            for site in 0..self.n as u16 {
                cluster = cluster.seed(site, key.clone(), value.clone());
            }
        }
        for (at, id, writes) in &self.txns {
            let per_site: BTreeMap<u16, Vec<WriteOp>> =
                (0..self.n as u16).map(|s| (s, writes.clone())).collect();
            cluster = cluster.submit(*at, TxnSpec { id: *id, writes: per_site });
        }
        if let Some(p) = &self.partition {
            cluster = cluster.partition(PartitionEngine::new(vec![p.clone()]));
        }
        if let Some(f) = self.failure {
            cluster = cluster.fail(f);
        }
        cluster
    }

    /// The same workload as a 1-shard, replication-`n` sharded cluster.
    fn build_sharded(&self, protocol: CommitProtocol) -> ShardCluster {
        let topology = ShardTopology::uniform(self.n, 1, self.n);
        let mut cluster = ShardCluster::new(topology, protocol).delay(self.delay.clone());
        for (key, value) in &self.seeds {
            cluster = cluster.seed(key.clone(), value.clone());
        }
        for (at, id, writes) in &self.txns {
            cluster = cluster.submit(*at, ShardTxnSpec { id: *id, writes: writes.clone() });
        }
        if let Some(p) = &self.partition {
            cluster = cluster.partition(PartitionEngine::new(vec![p.clone()]));
        }
        if let Some(f) = self.failure {
            cluster = cluster.fail(f);
        }
        cluster
    }
}

#[test]
fn one_shard_full_replication_matches_db_cluster_for_every_protocol() {
    for protocol in
        [CommitProtocol::TwoPhase, CommitProtocol::HuangLi, CommitProtocol::QuorumMajority]
    {
        // The RNG seed is fixed per protocol so every failure is replayable.
        let mut rng = SmallRng::seed_from_u64(0x5AAD ^ protocol.name().len() as u64);
        for i in 0..RUNS_PER_PROTOCOL {
            let spec = WorkloadSpec::random(&mut rng);
            let flat = spec.build_flat(protocol).run();
            let sharded = spec.build_sharded(protocol).run();
            let tag = format!("{} run #{i}", protocol.name());
            assert_eq!(flat.metrics, sharded.metrics, "{tag}: metrics");
            assert_eq!(flat.storages, sharded.storages, "{tag}: storages");
            assert_eq!(flat.wals, sharded.wals, "{tag}: WALs");
            assert_eq!(flat.blocked, sharded.blocked, "{tag}: blocked sets");
            assert_eq!(flat.trace.events(), sharded.trace.events(), "{tag}: trace");
            assert_eq!(flat.report.events, sharded.report.events, "{tag}: event count");
            // The flat configuration has no cross-shard traffic by
            // definition, and exactly one all-sites shard.
            assert_eq!(sharded.cross_shard.submitted, 0, "{tag}");
            assert_eq!(sharded.shards.len(), 1, "{tag}");
        }
    }
}

#[test]
fn one_shard_equivalence_holds_per_txn_construction_too() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for i in 0..10 {
        let spec = WorkloadSpec::random(&mut rng);
        let flat = spec.build_flat(CommitProtocol::HuangLi).construct_per_txn().run();
        let sharded = spec.build_sharded(CommitProtocol::HuangLi).construct_per_txn().run();
        assert_eq!(flat.metrics, sharded.metrics, "run #{i}: metrics");
        assert_eq!(flat.wals, sharded.wals, "run #{i}: WALs");
        assert_eq!(
            flat.participants_constructed, sharded.participants_constructed,
            "run #{i}: construction counts"
        );
    }
}
