//! Seeded chaos-campaign gate for CI.
//!
//! Samples a safe-family campaign — partitions, degraded-delay windows, and
//! duplicate envelopes, but no crash-during-partition overlap (the Sec. 7
//! impossibility territory) — and requires every timeline to leave the
//! paper's protocol atomic. The seed is pinned, so a red run here names a
//! timeline index that `Campaign::timeline(index)` reproduces exactly.

use ptp_core::scenario::ScenarioBuilder;
use ptp_core::{run_scenario_opts, Campaign, CampaignConfig, ProtocolKind, RunOptions};
use ptp_simnet::{EnvelopeMatch, SiteId, TraceEvent};

#[test]
fn fifty_timeline_safe_campaign_is_green_for_huang_li_3pc() {
    let config = CampaignConfig::safe(ProtocolKind::HuangLi3pc, 4, 50, 0xC1_2026);
    let report = Campaign::new(config).run();
    assert_eq!(report.executed, 50);
    assert!(
        report.all_green(),
        "campaign found {} failure(s); first: {:?}",
        report.failures.len(),
        report.failures.first()
    );
}

/// Regression for a counterexample an early campaign run surfaced (seed
/// 92694865751786356, shrunk by the campaign itself to this timeline): a
/// duplicated "yes" vote whose ghost copy crossed the partition boundary
/// used to *bounce back to its sender*, fabricating the undeliverable-vote
/// signal the paper's unilateral-abort rule relies on — slave 2 aborted
/// while the master (holding the original vote) committed. Ghost duplicates
/// now vanish at the boundary instead of bouncing; the run must stay atomic.
#[test]
fn ghost_duplicate_of_a_yes_vote_must_not_fabricate_an_undeliverable_bounce() {
    let timeline = ScenarioBuilder::new(4)
        .at(3143)
        .partition(vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2), SiteId(3)]])
        .duplicate(EnvelopeMatch::kind("yes"), 1191)
        .build();
    let result =
        run_scenario_opts(ProtocolKind::HuangLi3pc, &timeline.scenario(), &RunOptions::recording());
    assert!(result.verdict.is_atomic(), "verdict: {:?}", result.verdict);
    let ghost_dropped =
        result.trace.events().iter().any(|e| matches!(e, TraceEvent::Dropped { kind: "yes", .. }));
    let yes_returned =
        result.trace.events().iter().any(|e| matches!(e, TraceEvent::Returned { kind: "yes", .. }));
    assert!(ghost_dropped, "the partition-blocked ghost copy must be silently dropped");
    assert!(!yes_returned, "no yes vote may come back undeliverable in this timeline");
}

#[test]
fn fifty_timeline_safe_campaign_is_green_for_the_quorum_protocol() {
    let config = CampaignConfig::safe(ProtocolKind::QuorumMajority, 5, 50, 0xC2_2026);
    let report = Campaign::new(config).run();
    assert_eq!(report.executed, 50);
    assert!(
        report.all_green(),
        "campaign found {} failure(s); first: {:?}",
        report.failures.len(),
        report.failures.first()
    );
}
