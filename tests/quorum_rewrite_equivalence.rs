//! Quorum hot-path rewrite equivalence.
//!
//! The Quorum collection machinery was rewritten for speed (piggybacked
//! state reports, early round resolution, incremental tallies, exponential
//! blocked-retry backoff — see `crates/protocols/src/quorum.rs`). The
//! rewrites are tunable: [`QuorumTuning::baseline`] reproduces the naive
//! pre-rewrite protocol exactly, [`QuorumTuning::optimized`] (the default)
//! enables everything. This suite pins the equivalence the paper's
//! semantics require:
//!
//! 1. across **all four schedule families** of the `exp_multi_partition`
//!    benchmark grid, both tunings produce identical verdict counts, and
//!    both match the counts frozen in the committed `BENCH_schedule.json`;
//! 2. a permanently-partitioned minority still blocks, but with a
//!    **bounded** number of collection rounds (the retry-storm regression
//!    test) — the naive tuning polls an order of magnitude more often.

use ptp_core::protocols::quorum::QuorumTuning;
use ptp_core::protocols::Verdict;
use ptp_core::{
    sweep_with_session, ProtocolKind, RunOptions, Scenario, ScheduleShape, Session, SweepGrid,
    SweepReport,
};
use ptp_simnet::{DelayModel, ScheduleBuilder, SiteId};

const N: usize = 4;

/// The exact per-family grid of `exp_multi_partition` (all simple
/// boundaries × T/4 instants up to 8T × {permanent, heal-after-3T} × three
/// delay schedules).
fn family_grid(shape: ScheduleShape) -> SweepGrid {
    let mut grid = SweepGrid::standard(N).with_shapes(vec![shape]);
    grid.heals = vec![None, Some(3000)];
    grid.delays = vec![
        DelayModel::Fixed(1000),
        DelayModel::Uniform { seed: 11, min: 1, max: 1000 },
        ScheduleBuilder::with_default(1000).outbound(7, 400).build(),
    ];
    grid
}

/// Sweeps the grid through a quorum cluster running the given tuning.
fn sweep_quorum(grid: &SweepGrid, tuning: QuorumTuning) -> SweepReport {
    let mut session = Session::new(ProtocolKind::QuorumMajority, N);
    for p in session.runner_mut().participants_mut() {
        p.quorum_mut().expect("quorum cluster").set_tuning(tuning);
    }
    sweep_with_session(&mut session, grid)
}

fn verdict_counts(r: &SweepReport) -> (usize, usize, usize, usize) {
    (r.all_commit, r.all_abort, r.blocked_count, r.inconsistent_count)
}

#[test]
fn optimized_tuning_is_verdict_identical_to_baseline_on_every_family() {
    // Verdict counts frozen from the committed BENCH_schedule.json Quorum
    // rows (all_commit, all_abort, blocked, inconsistent), in
    // ScheduleShape::FAMILIES order. The baseline tuning must still
    // reproduce them (it *is* the seed protocol), and the optimized tuning
    // must match it cell-for-cell in aggregate.
    let seed_counts = [
        (827, 191, 368, 0), // simple
        (835, 199, 352, 0), // split-heal-resplit
        (810, 191, 385, 0), // multi-way
        (810, 191, 385, 0), // nested-secession
    ];
    for (shape, seed) in ScheduleShape::FAMILIES.iter().zip(seed_counts) {
        let grid = family_grid(*shape);
        let baseline = sweep_quorum(&grid, QuorumTuning::baseline());
        let optimized = sweep_quorum(&grid, QuorumTuning::optimized());
        assert_eq!(baseline.total, grid.size(), "{}", shape.name());
        assert_eq!(optimized.total, grid.size(), "{}", shape.name());
        assert_eq!(
            verdict_counts(&baseline),
            seed,
            "baseline tuning drifted from the committed seed counts on {}",
            shape.name()
        );
        assert_eq!(
            verdict_counts(&optimized),
            seed,
            "optimized tuning diverges from baseline on {}",
            shape.name()
        );
    }
}

#[test]
fn blocked_minority_reaches_blocked_in_a_bounded_number_of_rounds() {
    // {0,1,2} | {3} forever: the majority terminates by quorum, site 3
    // blocks. The backoff rewrite must keep its polling bounded over the
    // default 200T horizon instead of one round every 2T until the end.
    let scenario = Scenario::new(N).partition_g2(vec![SiteId(3)], 1500);
    let mut session = Session::new(ProtocolKind::QuorumMajority, N);
    let result = session.run_with(&scenario, &RunOptions::recording());

    assert!(matches!(result.verdict, Verdict::Blocked { .. }), "{:?}", result.verdict);
    for site in 0..3 {
        assert!(result.outcomes[site].decision.is_some(), "majority site {site} must terminate");
    }
    assert!(result.outcomes[3].decision.is_none(), "minority site must block");

    let minority_rounds =
        result.trace.notes("quorum-collect").filter(|(_, site, _)| *site == SiteId(3)).count();
    assert!(
        (2..=20).contains(&minority_rounds),
        "expected a handful of backed-off collection rounds, got {minority_rounds}"
    );

    // The naive tuning on the same scenario: an unbounded back-to-back
    // retry loop to the horizon. The optimized tuning polls identically
    // through the dense prefix (that is what keeps verdicts pinned), so
    // the savings all come from the exponential tail — still a multiple
    // of the total, pinning that the rewrite removed the storm rather
    // than the scenario being easy.
    let mut naive = Session::new(ProtocolKind::QuorumMajority, N);
    for p in naive.runner_mut().participants_mut() {
        p.quorum_mut().expect("quorum cluster").set_tuning(QuorumTuning::baseline());
    }
    let naive_result = naive.run_with(&scenario, &RunOptions::recording());
    assert_eq!(naive_result.verdict, result.verdict);
    let naive_rounds = naive_result
        .trace
        .notes("quorum-collect")
        .filter(|(_, site, _)| *site == SiteId(3))
        .count();
    assert!(
        naive_rounds >= 3 * minority_rounds,
        "baseline polled {naive_rounds} rounds vs optimized {minority_rounds}"
    );
}
