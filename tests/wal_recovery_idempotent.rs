//! Pins the claim in `crates/ddb/src/recovery.rs`'s doc comment:
//!
//! > Idempotent: recovering twice leaves identical state.
//!
//! A property test drives randomized per-transaction write sets through
//! randomized log lifecycles (how far each transaction got before the
//! crash, and what was flushed), crashes, and checks that `recover` twice
//! is exactly `recover` once — storage **and** WAL field-identical — and
//! that a second crash between the two recoveries changes nothing either
//! (recovery writes its own effects durably).

use proptest::prelude::*;
use ptp_core::ddb::recovery::recover;
use ptp_core::ddb::storage::Storage;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_core::ddb::wal::{Record, Wal};
use ptp_simnet::rng::SmallRng;

/// How far a transaction's lifecycle got before the crash.
#[derive(Debug, Clone, Copy)]
enum Progress {
    /// `Begin` appended only.
    Begun,
    /// `Begin` + `Commit` (commit durable, apply missing — the redo case).
    Committed,
    /// `Begin` + `Commit` + `Applied` (complete).
    Applied,
    /// `Begin` + `Abort` (complete).
    Aborted,
}

/// Builds one randomized site history: seeds, staged transactions in
/// assorted lifecycle stages, a randomized flush watermark, then a crash.
fn build_site(seed: u64, txn_count: usize) -> (Storage, Wal) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut storage = Storage::new();
    let mut wal = Wal::new();
    for k in 0..3u64 {
        storage.seed(Key::from(format!("k{k}")), Value::from_u64(k));
    }
    for i in 0..txn_count {
        let txn = TxnId(i as u32 + 1);
        let writes: Vec<WriteOp> = (0..=rng.gen_range(0..=2))
            .map(|_| WriteOp {
                key: Key::from(format!("k{}", rng.gen_range(0..=3))),
                value: Value::from_u64(rng.gen_range(0..=999)),
            })
            .collect();
        let progress = match rng.gen_range(0..=3) {
            0 => Progress::Begun,
            1 => Progress::Committed,
            2 => Progress::Applied,
            _ => Progress::Aborted,
        };
        wal.append(Record::Begin { txn, writes: writes.clone() });
        storage.stage(txn, writes);
        // Some begins never make it to stable storage at all.
        if rng.gen_range(0..=3) > 0 {
            wal.flush();
        }
        match progress {
            Progress::Begun => {}
            Progress::Committed => wal.append_durable(Record::Commit { txn }),
            Progress::Applied => {
                wal.append_durable(Record::Commit { txn });
                storage.apply(txn);
                wal.append_durable(Record::Applied { txn });
            }
            Progress::Aborted => {
                wal.append_durable(Record::Abort { txn });
                storage.discard(txn);
            }
        }
    }
    storage.crash();
    wal.crash();
    (storage, wal)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn recovering_twice_is_recovering_once(
        seed in 0u64..1_000_000,
        txn_count in 1usize..8,
    ) {
        // Path A: crash → recover once.
        let (mut storage_once, mut wal_once) = build_site(seed, txn_count);
        let first = recover(&mut storage_once, &mut wal_once);

        // Path B: the same history, recovered twice back to back.
        let (mut storage_twice, mut wal_twice) = build_site(seed, txn_count);
        let b_first = recover(&mut storage_twice, &mut wal_twice);
        prop_assert_eq!(&first, &b_first, "same crash must recover the same way");
        let second = recover(&mut storage_twice, &mut wal_twice);

        // The second pass finds only Complete transactions: it redoes and
        // discards nothing, and leaves storage and WAL field-identical.
        prop_assert!(second.redone.is_empty(), "second recovery redid {:?}", second.redone);
        prop_assert!(
            second.discarded.is_empty(),
            "second recovery discarded {:?}",
            second.discarded
        );
        prop_assert_eq!(&storage_once, &storage_twice, "storage diverged");
        prop_assert_eq!(&wal_once, &wal_twice, "WAL diverged");
    }

    #[test]
    fn crash_between_recoveries_changes_nothing(
        seed in 0u64..1_000_000,
        txn_count in 1usize..8,
    ) {
        // Recovery force-writes its own effects (`Applied`/`Abort` records),
        // so crash → recover → crash → recover ≡ crash → recover.
        let (mut storage_once, mut wal_once) = build_site(seed, txn_count);
        let _ = recover(&mut storage_once, &mut wal_once);

        let (mut storage_twice, mut wal_twice) = build_site(seed, txn_count);
        let _ = recover(&mut storage_twice, &mut wal_twice);
        storage_twice.crash();
        wal_twice.crash();
        let again = recover(&mut storage_twice, &mut wal_twice);

        prop_assert!(again.redone.is_empty() && again.discarded.is_empty());
        prop_assert_eq!(&storage_once, &storage_twice, "storage diverged");
        prop_assert_eq!(&wal_once, &wal_twice, "WAL diverged");
    }

    #[test]
    fn recovery_resurrects_no_uncommitted_and_loses_no_committed_write(
        seed in 0u64..1_000_000,
        txn_count in 1usize..8,
    ) {
        // Cross-check the plan against the durable log directly: every
        // durably committed transaction is redone or already applied;
        // everything else is discarded.
        let (mut storage, mut wal) = build_site(seed, txn_count);
        let committed: Vec<TxnId> = wal
            .durable()
            .iter()
            .filter_map(|r| match r {
                Record::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let summary = recover(&mut storage, &mut wal);
        for txn in &summary.redone {
            prop_assert!(committed.contains(txn), "{txn} redone without a commit record");
        }
        for txn in &summary.discarded {
            prop_assert!(!committed.contains(txn), "{txn} discarded despite a commit record");
        }
    }
}
