//! The Sec. 2 impossibility theorems and the Sec. 7 assumption-necessity
//! counterexamples, as tests: each *must* produce a violation, documenting
//! that the paper's model boundaries are real.

use ptp_core::{
    run_scenario, sweep, PartitionShape, ProtocolKind, RunOptions, Scenario, Session, SweepGrid,
};
use ptp_model::Decision;
use ptp_protocols::Verdict;
use ptp_simnet::{DelayModel, FailureSpec, ScheduleBuilder, SimTime, SiteId};

#[test]
fn message_loss_breaks_the_termination_protocol() {
    // "There exists no protocol resilient to a network partitioning when
    // messages are lost."
    let mut grid = SweepGrid::standard(3).pessimistic();
    grid.partition_times = (0..=32).map(|i| i * 250).collect();
    grid.delays = vec![
        DelayModel::Fixed(1000),
        DelayModel::Uniform { seed: 11, min: 1, max: 1000 },
        DelayModel::Uniform { seed: 12, min: 1, max: 1000 },
    ];
    let report = sweep(ProtocolKind::HuangLi3pc, &grid);
    assert!(
        report.inconsistent_count + report.blocked_count > 0,
        "dropping undeliverables must break some scenario: {report:?}"
    );
}

#[test]
fn optimistic_model_is_what_saves_it() {
    // The identical grid with returned messages is fully resilient — the
    // contrast that justifies the paper's optimistic-model assumption.
    let mut grid = SweepGrid::standard(3);
    grid.partition_times = (0..=32).map(|i| i * 250).collect();
    grid.delays = vec![
        DelayModel::Fixed(1000),
        DelayModel::Uniform { seed: 11, min: 1, max: 1000 },
        DelayModel::Uniform { seed: 12, min: 1, max: 1000 },
    ];
    let report = sweep(ProtocolKind::HuangLi3pc, &grid);
    assert!(report.fully_resilient(), "{report:?}");
}

#[test]
fn multiple_partitioning_breaks_the_termination_protocol() {
    // "There exists no protocol resilient to a multiple network
    // partitioning." Crafted 3-way split: slave 2's prepare crosses into
    // its own fragment; slave 3 never hears anything again.
    let crafted = ScheduleBuilder::with_default(1000).outbound(7, 400).build();
    let mut scenario = Scenario::new(4).delay(crafted);
    scenario.partition = PartitionShape::Multiple {
        groups: vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)], vec![SiteId(3)]],
        at: 2500,
        heal_at: None,
    };
    let result = run_scenario(ProtocolKind::HuangLi3pc, &scenario);
    assert!(
        matches!(result.verdict, Verdict::Inconsistent { .. }),
        "three-way split must violate atomicity, got {:?}",
        result.verdict
    );
}

#[test]
fn sec7_counterexample_1_lone_prepared_g2_slave_crashes() {
    let schedule = ScheduleBuilder::with_default(1000).outbound(7, 400).build();
    let scenario = Scenario::new(4)
        .partition_g2(vec![SiteId(2), SiteId(3)], 2500)
        .delay(schedule)
        .fail(FailureSpec::crash(SiteId(2), SimTime(3000)));
    let result = run_scenario(ProtocolKind::HuangLi3pc, &scenario);
    // G1 commits; the surviving G2 slave aborts.
    assert_eq!(result.outcomes[0].decision, Some(Decision::Commit));
    assert_eq!(result.outcomes[1].decision, Some(Decision::Commit));
    assert_eq!(result.outcomes[3].decision, Some(Decision::Abort));
    assert!(matches!(result.verdict, Verdict::Inconsistent { .. }));
}

#[test]
fn sec7_counterexample_2_g1_slave_crashes_before_probing() {
    // The crash is injected through RunOptions (not the scenario) to cover
    // the typed failure path end to end.
    let scenario = Scenario::new(4).partition_g2(vec![SiteId(3)], 2500);
    let options = RunOptions::recording().fail(FailureSpec::crash(SiteId(1), SimTime(3500)));
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 4);
    let result = session.run_with(&scenario, &options);
    assert_eq!(result.outcomes[0].decision, Some(Decision::Commit));
    assert_eq!(result.outcomes[2].decision, Some(Decision::Commit));
    assert_eq!(result.outcomes[3].decision, Some(Decision::Abort));
    assert!(matches!(result.verdict, Verdict::Inconsistent { .. }));

    // The same session without the failure option: resilient again (the
    // injected crash does not leak into later runs).
    let clean = session.run(&scenario);
    assert!(clean.verdict.is_resilient(), "{:?}", clean.verdict);
}

#[test]
fn without_crashes_the_same_scenarios_are_fine() {
    // Sanity: the Sec. 7 scenarios minus the crash are resilient — the
    // crash is load-bearing.
    let schedule = ScheduleBuilder::with_default(1000).outbound(7, 400).build();
    let s1 = Scenario::new(4).partition_g2(vec![SiteId(2), SiteId(3)], 2500).delay(schedule);
    assert!(run_scenario(ProtocolKind::HuangLi3pc, &s1).verdict.is_resilient());

    let s2 = Scenario::new(4).partition_g2(vec![SiteId(3)], 2500);
    assert!(run_scenario(ProtocolKind::HuangLi3pc, &s2).verdict.is_resilient());
}
