//! The elastic read path must not fork behaviour (this PR's tentpole
//! guarantee, extending `tests/shard_equivalence.rs` to reads):
//!
//! 1. A **read-enabled 1-shard** [`ShardCluster`] runs byte-identical
//!    (metrics, storages, WALs, blocked sets, trace) to [`DbCluster`]
//!    serving the same write *and* read workload, for every protocol.
//! 2. **Read-only transactions never mutate write state**: a run with
//!    reads mixed in leaves every storage, WAL, lock-hold interval and
//!    write decision identical to the write-only baseline — pooled and
//!    per-transaction participant construction alike, leases on or off.
//!
//! Workloads randomize write sets, read sets (single- and cross-shard),
//! submission times, delays, partitions and crashes from a seeded
//! [`SmallRng`] so failures replay bit-for-bit.

use ptp_core::ddb::cluster::{CommitProtocol, DbCluster};
use ptp_core::ddb::site::{ReadSpec, TxnSpec};
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_shard::{ShardCluster, ShardReadSpec, ShardTopology, ShardTxnSpec};
use ptp_simnet::rng::SmallRng;
use ptp_simnet::{DelayModel, FailureSpec, PartitionEngine, PartitionSpec, SimTime, SiteId};
use std::collections::BTreeMap;

const RUNS_PER_PROTOCOL: usize = 30;

/// Read ids live above every write id so the plan table never collides.
const READ_BASE: u32 = 1000;

/// One deterministic mixed workload, buildable as either cluster flavour.
struct WorkloadSpec {
    n: usize,
    /// Per write transaction: `(submit tick, id, writes)`.
    txns: Vec<(u64, TxnId, Vec<WriteOp>)>,
    /// Per read transaction: `(submit tick, id, keys)`.
    reads: Vec<(u64, TxnId, Vec<Key>)>,
    seeds: Vec<(Key, Value)>,
    delay: DelayModel,
    partition: Option<PartitionSpec>,
    failure: Option<FailureSpec>,
}

impl WorkloadSpec {
    /// `read_pool` names the key family reads draw from: `"k"` contends
    /// with the write keys, `"r"` is disjoint from them (both families are
    /// seeded either way).
    fn random(rng: &mut SmallRng, read_pool: &str) -> WorkloadSpec {
        let n = 3 + rng.gen_range(0..=1) as usize;
        let txn_count = 1 + rng.gen_range(0..=7) as u32;
        let txns = (0..txn_count)
            .map(|i| {
                let at = rng.gen_range(0..=20_000);
                let writes = (0..=rng.gen_range(0..=2))
                    .map(|_| WriteOp {
                        key: Key::from(format!("k{}", rng.gen_range(0..=2))),
                        value: Value::from_u64(rng.gen_range(0..=999)),
                    })
                    .collect();
                (at, TxnId(i + 1), writes)
            })
            .collect();

        let read_count = 1 + rng.gen_range(0..=5) as u32;
        let reads = (0..read_count)
            .map(|i| {
                let at = rng.gen_range(0..=25_000);
                let mut keys: Vec<Key> = (0..=rng.gen_range(0..=2))
                    .map(|_| Key::from(format!("{read_pool}{}", rng.gen_range(0..=2))))
                    .collect();
                keys.sort();
                keys.dedup();
                (at, TxnId(READ_BASE + i), keys)
            })
            .collect();

        let seeds = (0..3)
            .flat_map(|i| {
                [
                    (Key::from(format!("k{i}")), Value::from_u64(i as u64)),
                    (Key::from(format!("r{i}")), Value::from_u64(100 + i as u64)),
                ]
            })
            .collect();

        let delay = match rng.gen_range(0..=2) {
            0 => DelayModel::Fixed(1 + rng.gen_range(0..=999)),
            1 => DelayModel::Uniform { seed: rng.gen_range(0..=9_999), min: 1, max: 1000 },
            _ => DelayModel::Fixed(700),
        };

        let partition = (rng.gen_range(0..=2) == 0).then(|| {
            let cut = SiteId(1 + rng.gen_range(0..=(n as u64 - 2)) as u16);
            let g1 = (0..n as u16).map(SiteId).filter(|s| *s != cut).collect();
            let at = SimTime(rng.gen_range(0..=12_000));
            match rng.gen_range(0..=1) {
                0 => PartitionSpec::simple(at, g1, vec![cut]),
                _ => PartitionSpec::transient(
                    at,
                    g1,
                    vec![cut],
                    at + ptp_simnet::SimDuration(500 + rng.gen_range(0..=8_000)),
                ),
            }
        });

        let failure = (rng.gen_range(0..=3) == 0).then(|| {
            let site = SiteId(1 + rng.gen_range(0..=(n as u64 - 2)) as u16);
            let at = SimTime(500 + rng.gen_range(0..=8_000));
            if rng.gen_range(0..=1) == 0 {
                FailureSpec::crash(site, at)
            } else {
                FailureSpec::crash_recover(site, at, at + ptp_simnet::SimDuration(10_000))
            }
        });

        WorkloadSpec { n, txns, reads, seeds, delay, partition, failure }
    }

    /// The flat baseline: full replication, reads served at the master.
    fn build_flat(&self, protocol: CommitProtocol) -> DbCluster {
        let mut cluster = DbCluster::new(self.n, protocol).delay(self.delay.clone());
        for (key, value) in &self.seeds {
            for site in 0..self.n as u16 {
                cluster = cluster.seed(site, key.clone(), value.clone());
            }
        }
        for (at, id, writes) in &self.txns {
            let per_site: BTreeMap<u16, Vec<WriteOp>> =
                (0..self.n as u16).map(|s| (s, writes.clone())).collect();
            cluster = cluster.submit(*at, TxnSpec { id: *id, writes: per_site });
        }
        for (at, id, keys) in &self.reads {
            cluster = cluster.submit_read(*at, ReadSpec { id: *id, keys: keys.clone() });
        }
        if let Some(p) = &self.partition {
            cluster = cluster.partition(PartitionEngine::new(vec![p.clone()]));
        }
        if let Some(f) = self.failure {
            cluster = cluster.fail(f);
        }
        cluster
    }

    /// The same workload as a 1-shard, replication-`n` sharded cluster.
    fn build_sharded(&self, protocol: CommitProtocol, with_reads: bool) -> ShardCluster {
        let topology = ShardTopology::uniform(self.n, 1, self.n);
        let mut cluster = ShardCluster::new(topology, protocol).delay(self.delay.clone());
        for (key, value) in &self.seeds {
            cluster = cluster.seed(key.clone(), value.clone());
        }
        for (at, id, writes) in &self.txns {
            cluster = cluster.submit(*at, ShardTxnSpec { id: *id, writes: writes.clone() });
        }
        if with_reads {
            for (at, id, keys) in &self.reads {
                cluster = cluster.submit_read(*at, ShardReadSpec { id: *id, keys: keys.clone() });
            }
        }
        if let Some(p) = &self.partition {
            cluster = cluster.partition(PartitionEngine::new(vec![p.clone()]));
        }
        if let Some(f) = self.failure {
            cluster = cluster.fail(f);
        }
        cluster
    }
}

#[test]
fn one_shard_mixed_read_write_matches_db_cluster_for_every_protocol() {
    for protocol in
        [CommitProtocol::TwoPhase, CommitProtocol::HuangLi, CommitProtocol::QuorumMajority]
    {
        let mut rng = SmallRng::seed_from_u64(0x0EAD ^ protocol.name().len() as u64);
        for i in 0..RUNS_PER_PROTOCOL {
            let spec = WorkloadSpec::random(&mut rng, "k");
            let flat = spec.build_flat(protocol).run();
            let sharded = spec.build_sharded(protocol, true).run();
            let tag = format!("{} run #{i}", protocol.name());
            assert_eq!(flat.metrics, sharded.metrics, "{tag}: metrics");
            assert_eq!(flat.storages, sharded.storages, "{tag}: storages");
            assert_eq!(flat.wals, sharded.wals, "{tag}: WALs");
            assert_eq!(flat.blocked, sharded.blocked, "{tag}: blocked sets");
            assert_eq!(flat.trace.events(), sharded.trace.events(), "{tag}: trace");
            assert_eq!(flat.report.events, sharded.report.events, "{tag}: event count");
            // Single-shard reads never open a protocol round.
            assert_eq!(sharded.reads.protocol, 0, "{tag}");
            assert_eq!(sharded.reads.lease, 0, "{tag}: leases are off");
        }
    }
}

/// Strips the read-only records out of a metrics value so mixed runs can be
/// compared against write-only baselines field-by-field.
fn write_side(metrics: &ptp_core::ddb::site::Metrics) -> ptp_core::ddb::site::Metrics {
    let mut m = metrics.clone();
    m.reads.clear();
    m.reads_submitted.clear();
    m.read_aborts.clear();
    m.decisions.retain(|txn, _| txn.0 < READ_BASE);
    m
}

#[test]
fn reads_never_mutate_write_state_on_sharded_topologies() {
    // 3 shards × 2 replicas: reads mix local and cross-shard protocol
    // rounds, yet the write side of the run must be untouched — reads
    // never append WAL records, never stage writes, never log lock-hold
    // intervals. Reads draw from the disjoint `r` key family here so the
    // comparison isolates mutation from legitimate shared-lock contention
    // (a write queueing behind a reader shifts timings; that contention
    // semantics is pinned byte-identically by the DbCluster test above).
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    for i in 0..20 {
        let spec = WorkloadSpec::random(&mut rng, "r");
        let topology = ShardTopology::uniform(6, 3, 2);
        let build = |with_reads: bool, lease: bool| {
            let mut cluster = ShardCluster::new(topology.clone(), CommitProtocol::HuangLi)
                .delay(DelayModel::Fixed(700));
            for (key, value) in &spec.seeds {
                cluster = cluster.seed(key.clone(), value.clone());
            }
            for (at, id, writes) in &spec.txns {
                cluster = cluster.submit(*at, ShardTxnSpec { id: *id, writes: writes.clone() });
            }
            if with_reads {
                for (at, id, keys) in &spec.reads {
                    cluster =
                        cluster.submit_read(*at, ShardReadSpec { id: *id, keys: keys.clone() });
                }
            }
            if lease {
                cluster = cluster.leases(2_000, 6_000);
            }
            cluster.run()
        };
        let baseline = build(false, false);
        for lease in [false, true] {
            let mixed = build(true, lease);
            let tag = format!("run #{i} lease={lease}");
            assert_eq!(baseline.storages, mixed.storages, "{tag}: storages");
            assert_eq!(baseline.wals, mixed.wals, "{tag}: WALs");
            assert_eq!(
                baseline.metrics.lock_holds, mixed.metrics.lock_holds,
                "{tag}: lock-hold intervals"
            );
            assert_eq!(write_side(&baseline.metrics), write_side(&mixed.metrics), "{tag}");
            assert!(mixed.metrics.atomicity_violations().is_empty(), "{tag}");
        }
    }
}

#[test]
fn mixed_read_write_pooled_matches_per_txn_construction() {
    let mut rng = SmallRng::seed_from_u64(0xCAFE);
    for i in 0..10 {
        let spec = WorkloadSpec::random(&mut rng, "k");
        let build = |pooled: bool| {
            let mut cluster = spec.build_sharded(CommitProtocol::HuangLi, true);
            if !pooled {
                cluster = cluster.construct_per_txn();
            }
            cluster.run()
        };
        let pooled = build(true);
        let baseline = build(false);
        assert_eq!(pooled.metrics, baseline.metrics, "run #{i}: metrics");
        assert_eq!(pooled.storages, baseline.storages, "run #{i}: storages");
        assert_eq!(pooled.wals, baseline.wals, "run #{i}: WALs");
        assert_eq!(pooled.reads, baseline.reads, "run #{i}: read report");
    }
}
