//! End-to-end smoke of the live shard server: a short open-loop run must
//! serve every operation, pass the storage audit, and drain cleanly — with
//! and without group commit, and through a mid-run partition.

use ptp_core::livenet::LivePartition;
use ptp_live::{run_server, BatchConfig, LiveOptions};
use ptp_simnet::SiteId;
use std::time::Duration;

fn base(rate: f64) -> LiveOptions {
    let mut opts = LiveOptions::small(rate, Duration::from_millis(400));
    // Keep the flush spin cheap: this is a correctness smoke, not a
    // measurement.
    opts.flush_cost = Duration::from_micros(50);
    opts
}

#[test]
fn open_loop_run_audits_clean_and_drains() {
    let report = run_server(&base(200.0));
    assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
    assert!(report.audit.strict, "partition-free runs get the strict audit");
    assert!(report.clean_drain, "unclean drain: {report:?}");
    assert_eq!(report.completed_writes, report.issued_writes);
    assert_eq!(report.completed_reads, report.issued_reads);
    assert!(report.committed > 0);
    assert!(report.achieved_rate > 0.0);
}

#[test]
fn group_commit_run_audits_clean_and_drains() {
    let mut opts = base(200.0);
    opts.batch = BatchConfig::on(Duration::from_millis(3));
    let report = run_server(&opts);
    assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
    assert!(report.clean_drain, "unclean drain: {report:?}");
    assert_eq!(report.completed_writes, report.issued_writes);
    assert!(report.committed > 0);
    // Coalescing really coalesced and group commit really grouped.
    assert!(report.channel_sends <= report.protocol_messages);
    assert!(report.batching);
}

#[test]
fn partition_mid_run_still_serves_and_audits() {
    let mut opts = base(150.0);
    opts.batch = BatchConfig::on(Duration::from_millis(3));
    // Cut two sites off for the middle of the load window, then heal.
    opts.partition = Some(LivePartition::simple(
        Duration::from_millis(100),
        vec![SiteId(4), SiteId(5)],
        Some(Duration::from_millis(250)),
    ));
    let report = run_server(&opts);
    // Partition runs use the loose audit: atomicity and no-phantom-writes
    // must hold; replica convergence is exempt while ships can bounce.
    assert!(!report.audit.strict);
    assert!(report.audit.ok, "audit: {:?}", report.audit.violations);
    assert!(report.clean_drain, "unclean drain: {report:?}");
    assert_eq!(report.completed_writes, report.issued_writes);
    assert!(report.committed > 0);
}
