//! Experiment E10's backbone as an integration test: Theorem 9 says the
//! modified 3PC + termination protocol is resilient to optimistic multisite
//! simple network partitioning. We sweep every simple boundary, a dense grid
//! of partition instants, permanent and transient partitions, and several
//! delay schedules — and require all-commit or all-abort everywhere.
//!
//! The same sweeps document the baselines' failures: extended 2PC and
//! rule-augmented 3PC violate atomicity (Sec. 3), plain 2PC blocks.

use ptp_core::{sweep, ProtocolKind, SweepGrid};
use ptp_simnet::DelayModel;

fn dense_grid(n: usize) -> SweepGrid {
    let mut grid = SweepGrid::standard(n);
    // T/8 granularity up to 8T.
    grid.partition_times = (0..=64).map(|i| i * 125).collect();
    grid.delays = vec![
        DelayModel::Fixed(1000),
        DelayModel::Fixed(500),
        DelayModel::Fixed(1), // near-instant network
        DelayModel::Uniform { seed: 11, min: 1, max: 1000 },
        DelayModel::Uniform { seed: 99, min: 500, max: 1000 },
    ];
    grid
}

#[test]
fn theorem9_huang_li_3pc_resilient_n3_permanent() {
    let report = sweep(ProtocolKind::HuangLi3pc, &dense_grid(3));
    assert!(report.fully_resilient(), "violations: {report:?}");
}

#[test]
fn theorem9_huang_li_3pc_resilient_n4_permanent() {
    let mut grid = dense_grid(4);
    grid.partition_times = (0..=32).map(|i| i * 250).collect();
    let report = sweep(ProtocolKind::HuangLi3pc, &grid);
    assert!(report.fully_resilient(), "violations: {report:?}");
}

#[test]
fn sec6_huang_li_3pc_resilient_under_transient_partitions() {
    let mut grid = dense_grid(3).with_transient_heals(8);
    grid.partition_times = (0..=16).map(|i| i * 500).collect();
    grid.delays = vec![DelayModel::Fixed(1000), DelayModel::Uniform { seed: 5, min: 1, max: 1000 }];
    let report = sweep(ProtocolKind::HuangLi3pc, &grid);
    assert!(report.fully_resilient(), "violations: {report:?}");
}

#[test]
fn theorem10_huang_li_4pc_resilient() {
    let mut grid = dense_grid(3);
    grid.partition_times = (0..=32).map(|i| i * 250).collect();
    let report = sweep(ProtocolKind::HuangLi4pc, &grid);
    assert!(report.fully_resilient(), "violations: {report:?}");
}

#[test]
fn static_variant_resilient_under_permanent_partitions() {
    // The Sec. 5 protocol assumes the partition persists; under that
    // assumption it must be resilient too.
    let mut grid = dense_grid(3);
    grid.partition_times = (0..=32).map(|i| i * 250).collect();
    let report = sweep(ProtocolKind::HuangLi3pcStatic, &grid);
    assert!(report.fully_resilient(), "violations: {report:?}");
}

#[test]
fn sec3_extended_2pc_violates_atomicity_multisite() {
    let report = sweep(ProtocolKind::Extended2pc, &dense_grid(3));
    assert!(!report.fully_atomic(), "the Sec. 3 observation must reproduce");
}

#[test]
fn sec3_naive_augmented_3pc_violates_atomicity_multisite() {
    let report = sweep(ProtocolKind::Naive3pc, &dense_grid(3));
    assert!(!report.fully_atomic(), "the Sec. 3 observation must reproduce");
}

#[test]
fn two_pc_blocks_but_stays_atomic() {
    let mut grid = dense_grid(3);
    grid.partition_times = (0..=16).map(|i| i * 500).collect();
    let report = sweep(ProtocolKind::Plain2pc, &grid);
    assert!(report.fully_atomic());
    assert!(report.blocked_count > 0, "2PC must block under some partition");
}

#[test]
fn quorum_baseline_atomic_but_blocking() {
    let mut grid = dense_grid(5);
    grid.partition_times = (0..=16).map(|i| i * 500).collect();
    grid.delays = vec![DelayModel::Fixed(1000)];
    let report = sweep(ProtocolKind::QuorumMajority, &grid);
    assert!(report.fully_atomic(), "{report:?}");
    assert!(report.blocked_count > 0, "minority groups must block");
}

#[test]
fn mixed_votes_stay_atomic_under_partition() {
    use ptp_protocols::api::Vote;
    let mut grid = dense_grid(3);
    grid.partition_times = (0..=16).map(|i| i * 500).collect();
    grid.delays = vec![DelayModel::Fixed(1000), DelayModel::Uniform { seed: 3, min: 1, max: 1000 }];
    grid.votes =
        vec![vec![Vote::No, Vote::Yes], vec![Vote::Yes, Vote::No], vec![Vote::No, Vote::No]];
    let report = sweep(ProtocolKind::HuangLi3pc, &grid);
    // With a no-vote the transaction must abort everywhere; resilience
    // still means "no mixed decisions, nobody blocked".
    assert!(report.fully_resilient(), "violations: {report:?}");
    assert_eq!(report.all_commit, 0, "a no-vote can never commit");
}
