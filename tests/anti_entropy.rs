//! Regression: the stranded-replica convergence bug.
//!
//! A cross-shard commit ships its outcome to out-of-group replicas at
//! decision time — **once**. A replica partitioned away at that instant
//! missed the ship forever: the commit-time shipping never retries, so the
//! replica's store stayed stale until some *later* commit happened to ship
//! through it. With no subsequent commits, it diverged permanently.
//!
//! Anti-entropy closes the hole: the replica periodically polls its shard
//! master with its version vector; after the heal, the master answers with
//! the missed decision and a version-stamped delta, and the replica
//! installs both under full WAL discipline — WITHOUT any subsequent commit
//! shipping. These tests pin exactly that: heal → convergence via the sync
//! chain alone, and the same timeline without anti-entropy stays diverged
//! (the bug, preserved as the off-switch baseline).

use ptp_core::ddb::cluster::CommitProtocol;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_shard::{ShardCluster, ShardTopology, ShardTxnSpec};
use ptp_simnet::{PartitionEngine, PartitionSpec, SimTime, SiteId};

/// A key routed to `shard` under `topo`.
fn key_in(topo: &ShardTopology, shard: usize) -> Key {
    (0..512)
        .map(|i| Key::from(format!("key-{i}")))
        .find(|k| topo.shard_of(k) == shard)
        .expect("probe key")
}

/// 2 shards × 2 replicas over 4 sites; shard 1's replica (site 3) is cut
/// off while a cross-shard transaction commits, then the partition heals.
/// No other transaction ever runs.
fn stranded_replica_cluster(topo: &ShardTopology, k0: &Key, k1: &Key) -> ShardCluster {
    let replica = topo.group(1)[1];
    let rest: Vec<SiteId> = (0..4u16).map(SiteId).filter(|s| *s != replica).collect();
    ShardCluster::new(topo.clone(), CommitProtocol::HuangLi)
        .seed(k0.clone(), Value::from_u64(1))
        .seed(k1.clone(), Value::from_u64(2))
        // Cut before the submit, heal long after the commit ship was lost.
        .partition(PartitionEngine::new(vec![PartitionSpec::transient(
            SimTime(100),
            rest,
            vec![replica],
            SimTime(40_000),
        )]))
        .submit(
            500,
            ShardTxnSpec {
                id: TxnId(1),
                writes: vec![
                    WriteOp { key: k0.clone(), value: Value::from_u64(10) },
                    WriteOp { key: k1.clone(), value: Value::from_u64(20) },
                ],
            },
        )
}

#[test]
fn stranded_replica_converges_via_anti_entropy_without_subsequent_commits() {
    let topo = ShardTopology::uniform(4, 2, 2);
    let (k0, k1) = (key_in(&topo, 0), key_in(&topo, 1));
    let master = topo.master(1);
    let replica = topo.group(1)[1];

    let run = stranded_replica_cluster(&topo, &k0, &k1).anti_entropy(3_000).run();
    assert!(run.metrics.atomicity_violations().is_empty());
    assert_eq!(run.cross_shard.committed, 1);
    // The heal alone drove convergence: replica 3 caught up with master 2.
    assert_eq!(
        run.storages[replica.index()].get(&k1),
        run.storages[master.index()].get(&k1),
        "replica must converge after the heal"
    );
    assert_eq!(run.storages[replica.index()].get(&k1).unwrap().as_u64(), Some(20));
    // The catch-up went through the replica's own WAL: exactly one install.
    let begins = run.wals[replica.index()]
        .durable()
        .iter()
        .filter(|r| matches!(r, ptp_core::ddb::wal::Record::Begin { txn, .. } if *txn == TxnId(1)))
        .count();
    assert_eq!(begins, 1, "one installed decision, no duplicates");
    // The replayed decision credits shard availability at the replica.
    assert_eq!(run.shards[1].availability(), 1.0, "{:?}", run.shards[1]);
    assert!(run.trace.first_note(replica, "shard-applied").is_some());
}

#[test]
fn without_anti_entropy_the_stranded_replica_stays_diverged() {
    // The preserved bug, as the off-switch baseline: the identical timeline
    // minus the sync chain leaves replica 3 stale forever.
    let topo = ShardTopology::uniform(4, 2, 2);
    let (k0, k1) = (key_in(&topo, 0), key_in(&topo, 1));
    let replica = topo.group(1)[1];

    let run = stranded_replica_cluster(&topo, &k0, &k1).run();
    assert!(run.metrics.atomicity_violations().is_empty());
    assert_eq!(run.cross_shard.committed, 1);
    assert_eq!(
        run.storages[replica.index()].get(&k1).unwrap().as_u64(),
        Some(2),
        "no catch-up path: the seed value survives"
    );
    assert!(run.shards[1].availability() < 1.0, "{:?}", run.shards[1]);
}

#[test]
fn anti_entropy_goes_silent_once_converged() {
    // Post-convergence, every sync request is answered with silence (no
    // response message at all) — the chain must not generate steady-state
    // traffic. Count sync responses in the trace: at least one (the
    // catch-up), then none in the tail of the run.
    let topo = ShardTopology::uniform(4, 2, 2);
    let (k0, k1) = (key_in(&topo, 0), key_in(&topo, 1));
    let replica = topo.group(1)[1];

    let run = stranded_replica_cluster(&topo, &k0, &k1).anti_entropy(3_000).run();
    let responses: Vec<SimTime> = run
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            ptp_simnet::TraceEvent::Delivered { at, dst, kind, .. }
                if *dst == replica && *kind == "sync-resp" =>
            {
                Some(*at)
            }
            _ => None,
        })
        .collect();
    assert!(!responses.is_empty(), "the catch-up response must arrive");
    let last = responses.last().unwrap();
    assert!(
        last.ticks() < 60_000,
        "sync chain kept answering after convergence (last response at {last:?})"
    );
}
