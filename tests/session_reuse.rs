//! The session-reuse equivalence property (PR 2 tentpole guarantee):
//!
//! > A [`Session`] reused across 100 randomized scenarios produces
//! > field-identical [`ScenarioResult`]s to fresh one-shot runs, for every
//! > [`ProtocolKind`].
//!
//! Scenarios randomize the partition shape (none / simple / transient /
//! multiple), instant, heal, delay model, vote vector, undeliverable mode
//! and trace mode, all from a seeded [`SmallRng`] so failures replay
//! bit-for-bit. A second, proptest-driven property cross-checks that a
//! pre-warmed session's verdict-only fast path agrees with its full
//! results and with fresh one-shot runs.

use proptest::prelude::*;
use ptp_core::{
    run_scenario_opts, PartitionShape, ProtocolKind, RunOptions, Scenario, ScenarioResult, Session,
    TraceMode,
};
use ptp_simnet::rng::SmallRng;
use ptp_simnet::{DelayModel, SiteId};

const N: usize = 4;
const RUNS_PER_KIND: usize = 100;

fn random_scenario(rng: &mut SmallRng) -> Scenario {
    let mut scenario = Scenario::new(N);

    // Votes: mostly unanimous yes (the interesting case), sometimes mixed.
    if rng.gen_range(0..=3) == 0 {
        scenario.votes =
            (0..N - 1).map(|_| if rng.gen_range(0..=2) == 0 { No } else { Yes }).collect();
    }

    // Delay model.
    scenario = scenario.delay(match rng.gen_range(0..=2) {
        0 => DelayModel::Fixed(1 + rng.gen_range(0..=999)),
        1 => DelayModel::Uniform { seed: rng.gen_range(0..=9_999), min: 1, max: 1000 },
        _ => DelayModel::Fixed(1000),
    });

    // Partition shape.
    let at = rng.gen_range(0..=8999);
    scenario.partition = match rng.gen_range(0..=4) {
        0 => PartitionShape::None,
        1 | 2 => {
            let g2 = random_g2(rng);
            let heal = if rng.gen_range(0..=1) == 0 {
                None
            } else {
                Some(at + 500 + rng.gen_range(0..=7999))
            };
            PartitionShape::Simple { g2, at, heal_at: heal }
        }
        3 => PartitionShape::Simple { g2: random_g2(rng), at, heal_at: None },
        _ => PartitionShape::Multiple {
            groups: vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)], vec![SiteId(3)]],
            at,
            heal_at: if rng.gen_range(0..=1) == 0 { None } else { Some(at + 2000) },
        },
    };

    if rng.gen_range(0..=5) == 0 {
        scenario = scenario.pessimistic();
    }
    scenario
}

use ptp_core::protocols::Vote::{No, Yes};

fn random_g2(rng: &mut SmallRng) -> Vec<SiteId> {
    let mask = 1 + rng.gen_range(0..=((1u64 << (N - 1)) - 2));
    (0..N - 1).filter(|i| mask >> i & 1 == 1).map(|i| SiteId(i as u16 + 1)).collect()
}

fn assert_identical(kind: ProtocolKind, i: usize, warm: &ScenarioResult, fresh: &ScenarioResult) {
    let tag = format!("{} run #{i}", kind.name());
    assert_eq!(warm.verdict, fresh.verdict, "{tag}: verdict");
    assert_eq!(warm.outcomes, fresh.outcomes, "{tag}: outcomes");
    assert_eq!(warm.trace.events(), fresh.trace.events(), "{tag}: trace");
    assert_eq!(warm.report.stop, fresh.report.stop, "{tag}: stop reason");
    assert_eq!(warm.report.ended_at, fresh.report.ended_at, "{tag}: end instant");
    assert_eq!(warm.report.events, fresh.report.events, "{tag}: event count");
    assert_eq!(warm.report.counters, fresh.report.counters, "{tag}: counters");
}

#[test]
fn session_reused_100_times_matches_one_shot_for_every_kind() {
    for kind in ProtocolKind::ALL {
        // One session per kind, reused for all 100 scenarios; the RNG seed
        // is fixed per kind so every failure is replayable.
        let mut session = Session::new(kind, N);
        let mut rng = SmallRng::seed_from_u64(0xBEEF ^ kind.name().len() as u64);
        for i in 0..RUNS_PER_KIND {
            let scenario = random_scenario(&mut rng);
            let options =
                if rng.gen_range(0..=1) == 0 { RunOptions::recording() } else { RunOptions::new() };
            let warm = session.run_with(&scenario, &options);
            let fresh = run_scenario_opts(kind, &scenario, &options);
            assert_identical(kind, i, &warm, &fresh);
            if options.trace == TraceMode::Counters {
                assert!(warm.trace.is_empty(), "{} #{i}: counters mode traced", kind.name());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Cross-check with independently drawn proptest inputs: warm session
    /// verdicts equal one-shot verdicts for the paper's protocol, and the
    /// verdict-only fast path agrees with the full result. A mismatch is
    /// reported with the shrunk (minimal) instant/seed pair, not the raw
    /// draw.
    #[test]
    fn warm_session_verdict_equals_one_shot(
        at in 0u64..9000,
        g2_mask in 1u64..7,
        seed in 0u64..500,
        heal in prop::option::of(500u64..8000),
    ) {
        let g2: Vec<SiteId> =
            (0..N - 1).filter(|i| g2_mask >> i & 1 == 1).map(|i| SiteId(i as u16 + 1)).collect();
        let mut scenario = Scenario::new(N)
            .delay(DelayModel::Uniform { seed, min: 1, max: 1000 });
        scenario.partition =
            PartitionShape::Simple { g2, at, heal_at: heal.map(|h| at + h) };

        let options = RunOptions::new();
        let mut session = Session::new(ProtocolKind::HuangLi3pc, N);
        // Warm the session with an unrelated run first.
        let _ = session.run(&Scenario::new(N));
        let fast = session.verdict(&scenario, &options);
        let full = session.run_with(&scenario, &options);
        let fresh = run_scenario_opts(ProtocolKind::HuangLi3pc, &scenario, &options);
        prop_assert_eq!(&fast, &full.verdict);
        prop_assert_eq!(&full.verdict, &fresh.verdict);
        prop_assert_eq!(full.outcomes, fresh.outcomes);
    }
}
