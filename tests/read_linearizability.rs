//! Campaign-style linearizability sweep for the elastic read path.
//!
//! Every served read — lease fast path, local shared-lock path, or
//! cross-shard protocol round — must be consistent with some linearization
//! of the committed writes, **under every safe-family timeline**: clean
//! runs, transient partitions, crash/recover cycles, leases on or off,
//! anti-entropy on or off. The oracle is
//! [`ptp_shard::check_read_history`]; on a violation the failing workload
//! is shrunk (writes and reads removed one at a time while the violation
//! reproduces) before the panic reports it, so the minimized
//! counterexample lands in the assertion message.

use ptp_core::ddb::cluster::CommitProtocol;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_shard::{
    check_read_history, ReadViolation, ShardCluster, ShardReadSpec, ShardTopology, ShardTxnSpec,
};
use ptp_simnet::rng::SmallRng;
use ptp_simnet::{DelayModel, FailureSpec, PartitionEngine, PartitionSpec, SimTime, SiteId};

const READ_BASE: u32 = 1000;

/// One seeded scenario: a mixed workload plus a safe-family timeline.
#[derive(Clone)]
struct Scenario {
    topology: ShardTopology,
    protocol: CommitProtocol,
    seeds: Vec<(Key, Value)>,
    txns: Vec<(u64, TxnId, Vec<WriteOp>)>,
    reads: Vec<(u64, TxnId, Vec<Key>)>,
    delay: DelayModel,
    partition: Option<PartitionSpec>,
    failure: Option<FailureSpec>,
    lease: bool,
    anti_entropy: bool,
}

impl Scenario {
    fn random(rng: &mut SmallRng) -> Scenario {
        let topology = ShardTopology::uniform(6, 3, 2);
        let protocol = match rng.gen_range(0..=2) {
            0 => CommitProtocol::TwoPhase,
            1 => CommitProtocol::HuangLi,
            _ => CommitProtocol::QuorumMajority,
        };
        let keys: Vec<Key> = (0..6).map(|i| Key::from(format!("k{i}"))).collect();
        let seeds =
            keys.iter().enumerate().map(|(i, k)| (k.clone(), Value::from_u64(i as u64))).collect();

        let txn_count = 1 + rng.gen_range(0..=7) as u32;
        let txns = (0..txn_count)
            .map(|i| {
                let at = rng.gen_range(0..=30_000);
                let mut ws: Vec<WriteOp> = (0..=rng.gen_range(0..=2))
                    .map(|_| WriteOp {
                        key: keys[rng.gen_range(0..=5) as usize].clone(),
                        value: Value::from_u64(1000 * (i as u64 + 1) + rng.gen_range(0..=999)),
                    })
                    .collect();
                ws.sort_by(|a, b| a.key.cmp(&b.key));
                ws.dedup_by(|a, b| a.key == b.key);
                (at, TxnId(i + 1), ws)
            })
            .collect();

        let read_count = 2 + rng.gen_range(0..=8) as u32;
        let reads = (0..read_count)
            .map(|i| {
                let at = rng.gen_range(0..=40_000);
                let mut ks: Vec<Key> = (0..=rng.gen_range(0..=2))
                    .map(|_| keys[rng.gen_range(0..=5) as usize].clone())
                    .collect();
                ks.sort();
                ks.dedup();
                (at, TxnId(READ_BASE + i), ks)
            })
            .collect();

        let delay = match rng.gen_range(0..=1) {
            0 => DelayModel::Fixed(1 + rng.gen_range(0..=999)),
            _ => DelayModel::Uniform { seed: rng.gen_range(0..=9_999), min: 1, max: 1000 },
        };

        let partition = (rng.gen_range(0..=1) == 0).then(|| {
            let cut = SiteId(rng.gen_range(0..=5) as u16);
            let rest = (0..6u16).map(SiteId).filter(|s| *s != cut).collect();
            let at = SimTime(rng.gen_range(0..=20_000));
            match rng.gen_range(0..=1) {
                0 => PartitionSpec::simple(at, rest, vec![cut]),
                _ => PartitionSpec::transient(
                    at,
                    rest,
                    vec![cut],
                    at + ptp_simnet::SimDuration(500 + rng.gen_range(0..=15_000)),
                ),
            }
        });

        let failure = (rng.gen_range(0..=2) == 0).then(|| {
            let site = SiteId(rng.gen_range(0..=5) as u16);
            let at = SimTime(500 + rng.gen_range(0..=15_000));
            if rng.gen_range(0..=1) == 0 {
                FailureSpec::crash(site, at)
            } else {
                FailureSpec::crash_recover(site, at, at + ptp_simnet::SimDuration(12_000))
            }
        });

        Scenario {
            topology,
            protocol,
            seeds,
            txns,
            reads,
            delay,
            partition,
            failure,
            lease: rng.gen_range(0..=1) == 0,
            anti_entropy: rng.gen_range(0..=1) == 0,
        }
    }

    fn run(&self) -> Vec<ReadViolation> {
        let mut cluster =
            ShardCluster::new(self.topology.clone(), self.protocol).delay(self.delay.clone());
        for (key, value) in &self.seeds {
            cluster = cluster.seed(key.clone(), value.clone());
        }
        for (at, id, writes) in &self.txns {
            cluster = cluster.submit(*at, ShardTxnSpec { id: *id, writes: writes.clone() });
        }
        for (at, id, keys) in &self.reads {
            cluster = cluster.submit_read(*at, ShardReadSpec { id: *id, keys: keys.clone() });
        }
        if let Some(p) = &self.partition {
            cluster = cluster.partition(PartitionEngine::new(vec![p.clone()]));
        }
        if let Some(f) = self.failure {
            cluster = cluster.fail(f);
        }
        if self.lease {
            cluster = cluster.leases(2_000, 6_500);
        }
        if self.anti_entropy {
            cluster = cluster.anti_entropy(4_000);
        }
        let run = cluster.run();
        assert!(run.metrics.atomicity_violations().is_empty());
        let specs: Vec<ShardTxnSpec> = self
            .txns
            .iter()
            .map(|(_, id, writes)| ShardTxnSpec { id: *id, writes: writes.clone() })
            .collect();
        check_read_history(&self.topology, &self.seeds, &specs, &run.metrics)
    }

    /// Greedy delta-debugging: drop writes and reads one at a time while
    /// the violation keeps reproducing.
    fn shrink(&self) -> Scenario {
        let mut best = self.clone();
        let mut progress = true;
        while progress {
            progress = false;
            for i in 0..best.txns.len() {
                let mut candidate = best.clone();
                candidate.txns.remove(i);
                if !candidate.run().is_empty() {
                    best = candidate;
                    progress = true;
                    break;
                }
            }
            if progress {
                continue;
            }
            for i in 0..best.reads.len() {
                let mut candidate = best.clone();
                candidate.reads.remove(i);
                if !candidate.run().is_empty() {
                    best = candidate;
                    progress = true;
                    break;
                }
            }
        }
        best
    }

    fn describe(&self) -> String {
        format!(
            "protocol={} lease={} anti_entropy={} delay={:?}\n  txns={:?}\n  reads={:?}\n  partition={:?}\n  failure={:?}",
            self.protocol.name(),
            self.lease,
            self.anti_entropy,
            self.delay,
            self.txns,
            self.reads,
            self.partition,
            self.failure,
        )
    }
}

#[test]
fn every_served_read_linearizes_under_safe_family_timelines() {
    let mut rng = SmallRng::seed_from_u64(0x11EA);
    for i in 0..60 {
        let scenario = Scenario::random(&mut rng);
        let violations = scenario.run();
        if !violations.is_empty() {
            let minimal = scenario.shrink();
            let remaining = minimal.run();
            panic!(
                "scenario #{i}: {} read(s) fail to linearize; minimized counterexample:\n{}\nviolations: {:#?}",
                violations.len(),
                minimal.describe(),
                remaining,
            );
        }
    }
}

#[test]
fn lease_reads_are_exercised_and_linearize_on_the_clean_path() {
    // A clean timeline with leases on: renewals keep every grant live, so
    // single-shard reads after the first renewal round ride the fast path —
    // and still linearize.
    let topology = ShardTopology::uniform(6, 3, 2);
    let keys: Vec<Key> = (0..6).map(|i| Key::from(format!("k{i}"))).collect();
    let mut cluster =
        ShardCluster::new(topology.clone(), CommitProtocol::HuangLi).leases(2_000, 6_500);
    let seeds: Vec<(Key, Value)> =
        keys.iter().enumerate().map(|(i, k)| (k.clone(), Value::from_u64(i as u64))).collect();
    for (k, v) in &seeds {
        cluster = cluster.seed(k.clone(), v.clone());
    }
    let specs = vec![ShardTxnSpec {
        id: TxnId(1),
        writes: vec![WriteOp { key: keys[0].clone(), value: Value::from_u64(77) }],
    }];
    cluster = cluster.submit(10_000, specs[0].clone());
    for (i, k) in keys.iter().enumerate() {
        cluster = cluster.submit_read(
            20_000 + i as u64 * 100,
            ShardReadSpec { id: TxnId(READ_BASE + i as u32), keys: vec![k.clone()] },
        );
    }
    let run = cluster.run();
    assert!(run.metrics.atomicity_violations().is_empty());
    assert_eq!(run.reads.submitted, keys.len());
    assert_eq!(run.reads.lease, keys.len(), "all reads ride the lease path: {:?}", run.reads);
    assert!(check_read_history(&topology, &seeds, &specs, &run.metrics).is_empty());
    // The committed write is visible on the fast path.
    let r0 = run.metrics.reads.iter().find(|r| r.id == TxnId(READ_BASE)).expect("served");
    assert_eq!(r0.values[0].1, Some(Value::from_u64(77)));
}

#[test]
fn partitioned_master_falls_back_off_the_lease_path() {
    // Cut shard 0's master from its replica: the grants lapse, so a read at
    // the master after the cut must take the shared-lock path, not the
    // lease path — and the run still linearizes.
    let topology = ShardTopology::uniform(6, 3, 2);
    let master = topology.master(0);
    let replica = topology.group(0)[1];
    let k = (0..512)
        .map(|i| Key::from(format!("key-{i}")))
        .find(|k| topology.shard_of(k) == 0)
        .expect("probe key");
    let rest: Vec<SiteId> = (0..6u16).map(SiteId).filter(|s| *s != replica).collect();
    let seeds = vec![(k.clone(), Value::from_u64(5))];
    let run = ShardCluster::new(topology.clone(), CommitProtocol::HuangLi)
        .leases(2_000, 6_500)
        .seed(k.clone(), Value::from_u64(5))
        .partition(PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(10_000),
            rest,
            vec![replica],
        )]))
        // Submitted well after the grants from the pre-cut renewals lapse.
        .submit_read(30_000, ShardReadSpec { id: TxnId(READ_BASE), keys: vec![k.clone()] })
        .run();
    assert_eq!(run.reads.lease, 0, "lease must have lapsed: {:?}", run.reads);
    assert_eq!(run.reads.lock_local, 1, "{:?}", run.reads);
    let record = run.metrics.reads.iter().find(|r| r.id == TxnId(READ_BASE)).expect("served");
    assert_eq!(record.site, master);
    assert!(check_read_history(&topology, &seeds, &[], &run.metrics).is_empty());
}
